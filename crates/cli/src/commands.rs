//! Subcommand implementations. Each returns its output as a `String` so
//! the binary stays a two-line shell and tests can assert on content.

use nucanet::area::{analyze, unused_area_mm2};
use nucanet::config::ALL_DESIGNS;
use nucanet::energy::energy_of_run;
use nucanet::experiments::{run_cell, run_config, ExperimentScale};
use nucanet::scheme::ALL_SCHEMES;
use nucanet::sweep::{capacity_points, render_json_results, write_atomically, SweepRunner};
use nucanet::{CacheSystem, FaultConfig, Scheme};
use nucanet_bench::perf::{
    baseline_for, giant_sat_throughput, halo_sat_throughput, halo_throughput,
    mesh_sat_throughput, mesh_throughput, parse_trajectory, render_perf_json_with_sweep,
    screening_points, sweep_throughput, warm_speedup, SweepPerfSample,
};
use nucanet_noc::{
    run_fuzz, FuzzOptions, LinkCensus, MulticastStrategy, NodeId, RoutingSpec, Topology,
};
use nucanet_workload::{CoreModel, SynthConfig, Trace, TraceGenerator};

use crate::args::{Args, ParseError};
use crate::render::{metrics_line, Table};

/// Executes `args` and returns the text to print.
///
/// # Errors
///
/// Returns a [`ParseError`] (rendered by the binary) on bad options or
/// an unknown subcommand.
pub fn run_command(args: &Args) -> Result<String, ParseError> {
    match args.command.as_str() {
        "run" => cmd_run(args),
        "compare" => cmd_compare(args),
        "designs" => cmd_designs(args),
        "area" => Ok(cmd_area()),
        "energy" => cmd_energy(args),
        "census" => Ok(cmd_census()),
        "sweep" => cmd_sweep(args),
        "perf" => cmd_perf(args),
        "fuzz" => cmd_fuzz(args),
        "trace" => cmd_trace(args),
        "replay" => cmd_replay(args),
        "help" | "--help" | "-h" => Ok(help_text()),
        other => Err(ParseError::BadValue {
            key: "command".into(),
            value: other.into(),
            expected: "run|compare|designs|area|energy|census|sweep|perf|fuzz|trace|replay|help",
        }),
    }
}

/// The help screen.
pub fn help_text() -> String {
    "nucanet — networked NUCA cache simulator (HPCA'07 reproduction)\n\
     \n\
     usage: nucanet <command> [--key value ...]\n\
     \n\
     commands:\n\
     \x20 run      simulate one (design, scheme, benchmark) cell\n\
     \x20 compare  all replacement schemes on one design\n\
     \x20 designs  all network designs under one scheme\n\
     \x20 area     Table 4 area analysis for every design\n\
     \x20 energy   per-access dynamic energy split (§7 extension)\n\
     \x20 census   link-utilisation analysis of the 16x16 mesh\n\
     \x20 sweep    parallel mesh-vs-halo capacity sweep (4..32 MB)\n\
     \x20 perf     cycle-kernel throughput on the Fig. 7 mesh and halo\n\
     \x20 fuzz     differential fuzz: fast simulator vs golden model\n\
     \x20 trace    print a synthetic L2 trace (addr,write per line)\n\
     \x20 replay   run a trace file through a design (--file PATH)\n\
     \n\
     common options:\n\
     \x20 --design A..F        network design (default A)\n\
     \x20 --scheme NAME        promotion|lru|fastlru|mc-promotion|mc-fastlru|static\n\
     \x20 --bench NAME         Table 2 benchmark (default gcc)\n\
     \x20 --accesses N         measured accesses (default 2000)\n\
     \x20 --warmup N           warm-up accesses (default 20000)\n\
     \x20 --cores K            cores sharing the cache (run/sweep: closed-loop\n\
     \x20                      CMP mode; perf: mesh-giant injectors; default 1)\n\
     \x20 --seed N             workload seed\n\
     \x20 --strategy NAME      multicast replication strategy for run/\n\
     \x20                      sweep/perf/fuzz: hybrid (paper default),\n\
     \x20                      tree, or path (default: NUCANET_STRATEGY\n\
     \x20                      or hybrid; fuzz samples per scenario)\n\
     \x20 --workers N          sweep worker threads (default: all cores)\n\
     \x20 --sim-threads N      cycle-kernel threads per simulated network\n\
     \x20                      (default: NUCANET_SIM_THREADS or 1; 0 = auto;\n\
     \x20                      results are bit-identical for any value)\n\
     \x20 --json PATH          sweep/perf: also write machine-readable JSON\n\
     \x20 --baseline PATH      perf only: compare against a recorded BENCH_perf*.json\n\
     \x20 --sweep-points N     perf only: also time an N-point screening sweep\n\
     \x20                      fresh vs warm (arena reuse), reporting points/sec\n\
     \x20                      (files from a different perf schema are refused)\n\
     \x20 --faults N           sweep only: inject N random link faults per point\n\
     \x20 --fault-repair C     sweep only: repair each injected fault after C cycles\n\
     \x20 --check 1            run/sweep: enable the runtime invariant checker\n\
     \x20 --iters N            fuzz: scenarios to run (default 200)\n\
     \x20 --cross-strategy 1   fuzz: run every scenario under all three\n\
     \x20                      strategies and compare their delivered\n\
     \x20                      (packet, endpoint) multisets\n\
     \x20 --cmp-iters N        fuzz: CMP determinism scenarios, 2-4 cores\n\
     \x20                      across sim-thread counts (default 10)\n\
     \x20 --warm-iters N       fuzz: reset-and-replay scenarios — each runs\n\
     \x20                      fresh, then again on the same network after\n\
     \x20                      reset(), asserting bit-identical deliveries\n\
     \x20                      and counters (default 0)\n\
     \x20 --csv 1              emit CSV instead of aligned text\n\
     \n\
     A sweep point whose faults partition the network fails alone\n\
     (watchdog error in the table and JSON); the other points complete.\n"
        .into()
}

/// Cycle-kernel thread count: `--sim-threads N` when given, else the
/// `NUCANET_SIM_THREADS` environment variable, else 1 (serial kernel).
/// `0` auto-detects the host's core count. Simulated results are
/// bit-identical for every value.
fn sim_threads_of(args: &Args) -> Result<u32, ParseError> {
    if args.get("sim-threads").is_some() {
        Ok(args.get_usize("sim-threads", 1)? as u32)
    } else {
        Ok(nucanet_bench::sim_threads_from_env())
    }
}

/// `--strategy NAME` when given, else the `NUCANET_STRATEGY`
/// environment variable, else `None` (the config keeps the paper's
/// hybrid default). Delivered packets are identical under every
/// strategy; latency and replication counters move.
fn strategy_of(args: &Args) -> Result<Option<MulticastStrategy>, ParseError> {
    match args.strategy()? {
        Some(s) => Ok(Some(s)),
        None => Ok(nucanet_bench::strategy_from_env()),
    }
}

/// `--cores K`: the CMP core count (default 1). Zero and values beyond
/// the topology's attachment points are *configuration* errors reported
/// by the layout builder, so only the integer range is checked here.
fn cores_of(args: &Args) -> Result<u16, ParseError> {
    let raw = args.get_usize("cores", 1)?;
    u16::try_from(raw).map_err(|_| ParseError::BadValue {
        key: "cores".into(),
        value: raw.to_string(),
        expected: "a core count that fits in 16 bits",
    })
}

fn scale_of(args: &Args) -> Result<ExperimentScale, ParseError> {
    Ok(ExperimentScale {
        warmup: args.get_usize("warmup", 20_000)?,
        measured: args.get_usize("accesses", 2_000)?,
        active_sets: args.get_usize("sets", 256)? as u32,
        seed: args.get_usize("seed", 0xCAFE)? as u64,
    })
}

fn cmd_run(args: &Args) -> Result<String, ParseError> {
    let design = args.design()?;
    let scheme = args.scheme()?;
    let bench = args.benchmark()?;
    let scale = scale_of(args)?;
    let cores = cores_of(args)?;
    let check = args.get("check") == Some("1");
    let sim_threads = sim_threads_of(args)?;
    let strategy = strategy_of(args)?;

    if cores == 1 {
        let mut cfg = design.config(scheme);
        cfg.check_invariants = check;
        cfg.router.sim_threads = sim_threads;
        if let Some(s) = strategy {
            cfg.router.strategy = s;
        }
        let (m, ipc) = run_config(&cfg, &bench, scale)
            .map_err(|e| ParseError::SimulationFailed(e.to_string()))?;
        let note = if check { "\ninvariants checked: ok" } else { "" };
        return Ok(format!(
            "{design:?} / {scheme} / {}\n{}\nIPC {ipc:.3} (perfect-L2 {:.2}){note}\n",
            bench.name,
            metrics_line(&m),
            bench.perfect_l2_ipc
        ));
    }
    // CMP: every core runs the same profile with a different seed.
    let mut cfg = design.config(scheme);
    cfg.check_invariants = check;
    cfg.router.sim_threads = sim_threads;
    if let Some(s) = strategy {
        cfg.router.strategy = s;
    }
    let mut sys = CacheSystem::try_with_cores(&cfg, cores)
        .map_err(|e| ParseError::InvalidConfig(e.to_string()))?;
    let traces: Vec<Trace> = (0..cores)
        .map(|i| {
            let mut gen = TraceGenerator::new(
                bench,
                SynthConfig {
                    active_sets: scale.active_sets,
                    seed: scale.seed + i as u64,
                    ..Default::default()
                },
            );
            gen.generate(scale.warmup, scale.measured)
        })
        .collect();
    let ms = sys
        .run_cmp(&traces)
        .map_err(|e| ParseError::SimulationFailed(e.to_string()))?;
    let mut out = format!("{design:?} / {scheme} / {} x{cores} cores\n", bench.name);
    for (i, m) in ms.iter().enumerate() {
        out.push_str(&format!("core {i}: {}\n", metrics_line(m)));
    }
    Ok(out)
}

fn cmd_compare(args: &Args) -> Result<String, ParseError> {
    let design = args.design()?;
    let bench = args.benchmark()?;
    let scale = scale_of(args)?;
    let mut t = Table::new(vec!["scheme", "avg", "hit", "miss", "hitrate", "ipc"]);
    for scheme in ALL_SCHEMES.into_iter().chain([Scheme::StaticNuca]) {
        // Static NUCA only routes on the full mesh and halo.
        if scheme == Scheme::StaticNuca
            && !matches!(design, nucanet::Design::A | nucanet::Design::E)
        {
            continue;
        }
        let (m, ipc) = run_cell(design, scheme, &bench, scale);
        t.push(vec![
            scheme.name().to_string(),
            format!("{:.1}", m.avg_latency()),
            format!("{:.1}", m.avg_hit_latency()),
            format!("{:.1}", m.avg_miss_latency()),
            format!("{:.3}", m.hit_rate()),
            format!("{ipc:.3}"),
        ]);
    }
    Ok(render(args, t))
}

fn cmd_designs(args: &Args) -> Result<String, ParseError> {
    let scheme = args.scheme()?;
    let bench = args.benchmark()?;
    let scale = scale_of(args)?;
    let mut t = Table::new(vec!["design", "interconnect", "avg", "ipc", "norm"]);
    let mut base_ipc = None;
    for d in ALL_DESIGNS {
        // Static NUCA needs uniform bank counts AND routable fills to
        // every bank — only the full mesh (A) and halo (E) qualify.
        if scheme == Scheme::StaticNuca && !matches!(d, nucanet::Design::A | nucanet::Design::E) {
            continue;
        }
        let (m, ipc) = run_cell(d, scheme, &bench, scale);
        let base = *base_ipc.get_or_insert(ipc);
        t.push(vec![
            format!("{d:?}"),
            d.interconnect_description().to_string(),
            format!("{:.1}", m.avg_latency()),
            format!("{ipc:.3}"),
            format!("{:.3}", ipc / base),
        ]);
    }
    Ok(render(args, t))
}

fn cmd_area() -> String {
    let mut t = Table::new(vec![
        "design",
        "bank%",
        "router%",
        "link%",
        "L2 mm2",
        "chip mm2",
        "unused mm2",
    ]);
    for d in ALL_DESIGNS {
        let a = analyze(d);
        let (b, r, l) = a.breakdown.shares();
        t.push(vec![
            format!("{d:?}"),
            format!("{:.1}", 100.0 * b),
            format!("{:.1}", 100.0 * r),
            format!("{:.1}", 100.0 * l),
            format!("{:.1}", a.breakdown.l2_mm2()),
            format!("{:.1}", a.chip_mm2),
            format!("{:.1}", unused_area_mm2(&a)),
        ]);
    }
    t.to_text()
}

fn cmd_energy(args: &Args) -> Result<String, ParseError> {
    let design = args.design()?;
    let scheme = args.scheme()?;
    let bench = args.benchmark()?;
    let scale = scale_of(args)?;
    let (m, _) = run_cell(design, scheme, &bench, scale);
    let e = energy_of_run(&design.config(scheme), &m);
    let n = m.accesses() as f64;
    Ok(format!(
        "{design:?} / {scheme} / {}: {:.1} pJ per access\n\
         \x20 link {:.1}  router {:.1}  bank {:.1}  memory {:.1}  (network share {:.0}%)\n",
        bench.name,
        e.per_access_pj(),
        e.link_pj / n,
        e.router_pj / n,
        e.bank_pj / n,
        e.memory_pj / n,
        100.0 * e.network_share()
    ))
}

fn cmd_census() -> String {
    let unit = |n: u16| vec![1u32; n as usize];
    let topo = Topology::mesh(16, 16, &unit(15), &unit(15));
    let rt = RoutingSpec::Xy.build(&topo).expect("mesh routes under XY");
    let core = topo.node_at(7, 0);
    let memory = topo.node_at(8, 15);
    let mut flows: Vec<(NodeId, NodeId)> = Vec::new();
    for c in 0..16 {
        for r in 0..16 {
            let bank = topo.node_at(c, r);
            flows.push((core, bank));
            flows.push((bank, core));
            if r + 1 < 16 {
                flows.push((bank, topo.node_at(c, r + 1)));
                flows.push((topo.node_at(c, r + 1), bank));
            }
        }
        flows.push((memory, topo.node_at(c, 0)));
        flows.push((topo.node_at(c, 15), memory));
    }
    let census = LinkCensus::from_flows(&topo, &rt, &flows);
    let simp = Topology::simplified_mesh(16, 16, &unit(15), &unit(15));
    format!(
        "16x16 mesh under XY with cache traffic: {}/{} links never used ({:.0}%)\n\
         simplified mesh keeps {} links (removes {})\n\
         paper §1: \"20% of the links in a mesh network are never used\"\n",
        census.unused(),
        census.total(),
        100.0 * census.unused_fraction(),
        simp.link_count(),
        topo.link_count() - simp.link_count()
    )
}

/// Cycle window in which `--faults` places random link failures. Warm-up
/// is functional (no cycles), so even the smallest sweep point simulates
/// well past this window and every scheduled fault actually lands.
const FAULT_WINDOW: (u64, u64) = (1, 1_000);

fn cmd_sweep(args: &Args) -> Result<String, ParseError> {
    let bench = args.benchmark()?;
    let scale = scale_of(args)?;
    let workers = args.get_usize("workers", 0)?;
    let faults = args.get_usize("faults", 0)?;
    let repair = args.get_usize("fault-repair", 0)?;
    let cores = cores_of(args)?.max(1);
    let runner = if workers == 0 {
        SweepRunner::new()
    } else {
        SweepRunner::with_workers(workers)
    };
    let mut points = capacity_points(bench, scale);
    let sim_threads = sim_threads_of(args)?;
    let strategy = strategy_of(args)?;
    for p in &mut points {
        let cfg = std::sync::Arc::make_mut(&mut p.config);
        cfg.router.sim_threads = sim_threads;
        if let Some(s) = strategy {
            cfg.router.strategy = s;
        }
        // CMP sweep: every point runs the closed-loop N-core mode with
        // per-core derived traces (bit-identical for any worker count).
        cfg.cores = cores;
        if cores > 1 {
            p.label = format!("{} x{cores} cores", p.label).into();
        }
    }
    if args.get("check") == Some("1") {
        for p in &mut points {
            std::sync::Arc::make_mut(&mut p.config).check_invariants = true;
        }
    }
    if faults > 0 {
        let fc = FaultConfig::random(
            faults as u32,
            FAULT_WINDOW,
            (repair > 0).then_some(repair as u64),
        );
        for p in &mut points {
            std::sync::Arc::make_mut(&mut p.config).faults = Some(fc.clone());
        }
    }
    let results = runner.try_run(&points);
    let mut t = Table::new(vec![
        "point", "avg", "p50", "p95", "p99", "hitrate", "ipc", "status",
    ]);
    let mut failures = Vec::new();
    for r in &results {
        match r {
            Ok(o) => {
                let p = |q: f64| {
                    o.metrics
                        .latency_percentile(q)
                        .map_or_else(|| "-".into(), |v| v.to_string())
                };
                let status = if o.metrics.net.link_down_events > 0 {
                    format!("ok ({} faults)", o.metrics.net.link_down_events)
                } else {
                    "ok".into()
                };
                t.push(vec![
                    o.label.to_string(),
                    format!("{:.1}", o.metrics.avg_latency()),
                    p(0.50),
                    p(0.95),
                    p(0.99),
                    format!("{:.3}", o.metrics.hit_rate()),
                    format!("{:.3}", o.ipc),
                    status,
                ]);
            }
            Err(f) => {
                let dash = || "-".to_string();
                t.push(vec![
                    f.label.to_string(),
                    dash(),
                    dash(),
                    dash(),
                    dash(),
                    dash(),
                    dash(),
                    format!("error: {}", f.error.kind()),
                ]);
                failures.push(f);
            }
        }
    }
    let mut out = render(args, t);
    for f in &failures {
        out.push_str(&format!("point '{}' failed: {}\n", f.label, f.error));
    }
    if !failures.is_empty() {
        out.push_str(&format!(
            "{}/{} points failed; surviving results are reported above (degraded sweep)\n",
            failures.len(),
            results.len()
        ));
    }
    if let Some(path) = args.get("json") {
        let json = render_json_results("sweep", runner.workers(), &points, &results);
        write_atomically(std::path::Path::new(path), &json).map_err(|e| ParseError::BadValue {
            key: "json".into(),
            value: format!("{path}: {e}"),
            expected: "a writable path",
        })?;
        out.push_str(&format!("wrote {path}\n"));
    }
    Ok(out)
}

fn cmd_perf(args: &Args) -> Result<String, ParseError> {
    let packets = args.get_usize("packets", 5_000)? as u64;
    let repeats = args.get_usize("repeats", 1)?.max(1);
    let threads = sim_threads_of(args)?;
    let cores = cores_of(args)?.max(1);
    // The perf harness reads its router parameters from the
    // environment, so `--strategy` is forwarded through the variable
    // the bench binaries already honour.
    if let Some(s) = args.strategy()? {
        std::env::set_var("NUCANET_STRATEGY", s.name());
    }
    let best = |run: &dyn Fn() -> nucanet_bench::perf::PerfSample| {
        (0..repeats)
            .map(|_| run())
            .min_by_key(|s| s.wall)
            .expect("repeats >= 1")
    };
    let samples = vec![
        best(&|| mesh_throughput(packets, threads)),
        best(&|| halo_throughput(packets, threads)),
        best(&|| mesh_sat_throughput(packets, threads)),
        best(&|| halo_sat_throughput(packets, threads)),
        best(&|| giant_sat_throughput(packets, threads, cores)),
    ];
    let mut out = format!(
        "cycle-kernel throughput ({packets} packets, best of {repeats}, sim-threads {threads})\n"
    );
    for s in &samples {
        out.push_str(&format!(
            "{:10} {:>12.0} cycles/s {:>12.0} flit-hops/s ({} cycles, {} ms, {} thr)",
            s.config,
            s.cycles_per_sec(),
            s.flit_hops_per_sec(),
            s.cycles,
            s.wall.as_millis(),
            s.threads
        ));
        match baseline_for(s.config) {
            Some(b) if b.cycles_per_sec.is_finite() => out.push_str(&format!(
                "  {:.2}x vs baseline\n",
                s.cycles_per_sec() / b.cycles_per_sec
            )),
            _ => out.push('\n'),
        }
        if s.threads > 1 {
            out.push_str(&format!(
                "{:10}   gate: {} parallel / {} serial cycles, dispatch {:.1} ms\n",
                "",
                s.adaptive_parallel_cycles,
                s.adaptive_serial_cycles,
                s.dispatch_ns as f64 / 1e6
            ));
        }
    }
    let mut sweep_samples: Vec<SweepPerfSample> = Vec::new();
    let sweep_points = args.get_usize("sweep-points", 0)? as u64;
    if sweep_points > 0 {
        let points = screening_points(sweep_points);
        out.push_str(&format!(
            "sweep throughput ({sweep_points} screening points, 1 worker, best of {repeats})\n"
        ));
        for warm in [false, true] {
            let s = (0..repeats)
                .map(|_| sweep_throughput(&points, 1, warm))
                .min_by_key(|s| s.wall)
                .expect("repeats >= 1");
            out.push_str(&format!(
                "{:10} {:>12.1} points/s  ({} points, {} ms)\n",
                s.mode,
                s.points_per_sec(),
                s.points,
                s.wall.as_millis()
            ));
            sweep_samples.push(s);
        }
        if let Some(x) = warm_speedup(&sweep_samples) {
            out.push_str(&format!("warm speedup: {x:.2}x fresh points/sec\n"));
        }
    }
    if let Some(path) = args.get("baseline") {
        // Compare against a previously recorded BENCH_perf*.json. The
        // parse refuses cross-schema files (perf-v1 vs perf-v2) with a
        // clear message rather than comparing numbers that were
        // measured by different harness loops.
        let text =
            std::fs::read_to_string(path).map_err(|e| ParseError::BadValue {
                key: "baseline".into(),
                value: format!("{path}: {e}"),
                expected: "a readable BENCH_perf JSON file",
            })?;
        let runs = parse_trajectory(&text).map_err(|e| ParseError::BadValue {
            key: "baseline".into(),
            value: format!("{path}: {e}"),
            expected: "a nucanet/perf-v2 BENCH_perf document",
        })?;
        out.push_str(&format!("vs {path}:\n"));
        for s in &samples {
            match runs.iter().find(|r| r.config == s.config) {
                Some(r) if r.cycles_per_sec > 0.0 => out.push_str(&format!(
                    "{:10} {:>6.2}x (recorded {:.0} cycles/s at {} thr)\n",
                    s.config,
                    s.cycles_per_sec() / r.cycles_per_sec,
                    r.cycles_per_sec,
                    r.threads
                )),
                _ => out.push_str(&format!("{:10} (not in baseline file)\n", s.config)),
            }
        }
    }
    if let Some(path) = args.get("json") {
        write_atomically(
            std::path::Path::new(path),
            &render_perf_json_with_sweep(&samples, &sweep_samples),
        )
        .map_err(
            |e| ParseError::BadValue {
                key: "json".into(),
                value: format!("{path}: {e}"),
                expected: "a writable path",
            },
        )?;
        out.push_str(&format!("wrote {path}\n"));
    }
    Ok(out)
}

/// Differential fuzzing: seeded random scenarios through the fast
/// wormhole simulator (twice, for determinism) and the store-and-forward
/// golden model, comparing delivered-packet multisets. On failure the
/// collapsed seed is printed and written to `FUZZ_FAILURE.json` so CI
/// can upload it as an artifact.
fn cmd_fuzz(args: &Args) -> Result<String, ParseError> {
    let opts = FuzzOptions {
        iters: args.get_usize("iters", 200)? as u64,
        seed: args.get_usize("seed", 0xA11CE)? as u64,
        // The checker defaults ON for fuzzing; `--check 0` disables it.
        check: args.get("check") != Some("0"),
        max_cycles: args.get_usize("max-cycles", 50_000)? as u64,
        sim_threads: sim_threads_of(args)?,
        warm_iters: args.get_usize("warm-iters", 0)? as u64,
        // `--strategy` pins one strategy; by default each scenario
        // samples its own from the seed.
        strategy: strategy_of(args)?,
        // `--cross-strategy 1` runs every scenario under all three
        // strategies and compares their delivered multisets.
        cross_strategy: args.get("cross-strategy") == Some("1"),
    };
    let cmp_opts = nucanet::CmpFuzzOptions {
        iters: args.get_usize("cmp-iters", 10)? as u64,
        seed: args.get_usize("seed", 0xA11CE)? as u64,
        accesses: 40,
    };
    let report = run_fuzz(&opts);
    if let Some(f) = &report.failure {
        let json = format!(
            "{{\n  \"schema\": \"nucanet/fuzz-failure-v1\",\n  \"iter\": {},\n  \
             \"seed\": {},\n  \"detail\": \"{}\"\n}}\n",
            f.iter,
            f.seed,
            f.detail
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        );
        write_atomically(std::path::Path::new("FUZZ_FAILURE.json"), &json).ok();
        return Err(ParseError::SimulationFailed(format!(
            "fuzz iteration {} failed (replay: nucanet fuzz --iters 1 --seed {}): {}",
            f.iter, f.seed, f.detail
        )));
    }
    // Layer above the network: closed-loop CMP runs (2-4 cores) must be
    // bit-identical across cycle-kernel thread counts.
    let cmp_clean = nucanet::run_cmp_fuzz(&cmp_opts).map_err(|f| {
        ParseError::SimulationFailed(format!(
            "cmp fuzz iteration {} failed (replay: nucanet fuzz --iters 0 \
             --cmp-iters 1 --seed {}): {}",
            f.iter, f.seed, f.detail
        ))
    })?;
    let mode = if opts.cross_strategy {
        "cross-strategy".to_string()
    } else {
        match opts.strategy {
            Some(s) => format!("strategy {s}"),
            None => "strategy sampled".to_string(),
        }
    };
    let [h, t, p] = report.strategy_runs;
    Ok(format!(
        "fuzz: {} iterations clean (checker {}, {mode})\n\
         {} packets injected, {} deliveries, {} multicasts, {} fault events\n\
         strategy runs: {h} hybrid, {t} tree, {p} path\n\
         warm fuzz: {} reset-and-replay scenarios clean\n\
         cmp fuzz: {} scenarios clean (2-4 cores, sim-threads 1 vs 4)\n",
        report.iters_run,
        if opts.check { "on" } else { "off" },
        report.packets,
        report.deliveries,
        report.multicasts,
        report.fault_events,
        report.warm_iters_run,
        cmp_clean
    ))
}

fn cmd_trace(args: &Args) -> Result<String, ParseError> {
    let bench = args.benchmark()?;
    let n = args.get_usize("accesses", 1_000)?;
    let seed = args.get_usize("seed", 0xCAFE)? as u64;
    let mut gen = TraceGenerator::new(
        bench,
        SynthConfig {
            seed,
            ..Default::default()
        },
    );
    let trace = gen.generate(0, n);
    let mut out = String::with_capacity(n * 12);
    out.push_str("# addr,write\n");
    for a in trace.all() {
        out.push_str(&format!("{:#010x},{}\n", a.addr, u8::from(a.write)));
    }
    Ok(out)
}

fn cmd_replay(args: &Args) -> Result<String, ParseError> {
    let design = args.design()?;
    let scheme = args.scheme()?;
    let path = args
        .get("file")
        .ok_or(ParseError::MissingValue("file".into()))?;
    let file = std::fs::File::open(path).map_err(|e| ParseError::BadValue {
        key: "file".into(),
        value: format!("{path}: {e}"),
        expected: "a readable trace file",
    })?;
    let trace = nucanet_workload::read_trace(std::io::BufReader::new(file)).map_err(|e| {
        ParseError::BadValue {
            key: "file".into(),
            value: e.to_string(),
            expected: "a trace in `addr,write` format",
        }
    })?;
    let mut sys = CacheSystem::new(&design.config(scheme));
    let m = sys
        .run(&trace)
        .map_err(|e| ParseError::SimulationFailed(e.to_string()))?;
    Ok(format!(
        "{design:?} / {scheme} / {path}\n{}\n",
        metrics_line(&m)
    ))
}

fn render(args: &Args, t: Table) -> String {
    if args.get("csv") == Some("1") {
        t.to_csv()
    } else {
        t.to_text()
    }
}

/// IPC for a metrics/benchmark pair (exposed for the binary's tests).
pub fn ipc_of(m: &nucanet::Metrics, bench: &nucanet_workload::BenchmarkProfile) -> f64 {
    m.ipc(&CoreModel::for_profile(bench))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(line: &str) -> String {
        let args = Args::parse(line.split_whitespace().map(String::from)).expect("parses");
        run_command(&args).expect("command succeeds")
    }

    #[test]
    fn help_lists_all_commands() {
        let h = help_text();
        for cmd in [
            "run", "compare", "designs", "area", "energy", "census", "sweep", "perf", "fuzz",
            "trace",
        ] {
            assert!(h.contains(cmd), "help must mention {cmd}");
        }
    }

    #[test]
    fn fuzz_short_campaign_is_clean() {
        let out = run("fuzz --iters 10 --seed 99");
        assert!(out.contains("10 iterations clean"), "{out}");
        assert!(out.contains("checker on"), "{out}");
    }

    #[test]
    fn fuzz_warm_replays_are_clean() {
        let out = run("fuzz --iters 2 --warm-iters 8 --seed 31");
        assert!(
            out.contains("warm fuzz: 8 reset-and-replay scenarios clean"),
            "{out}"
        );
    }

    #[test]
    fn fuzz_samples_strategies_by_default() {
        let out = run("fuzz --iters 12 --seed 5");
        assert!(out.contains("strategy sampled"), "{out}");
        assert!(out.contains("strategy runs:"), "{out}");
        // Twelve seeded scenarios should not all collapse onto one
        // strategy (the sampler is a decorrelated stream).
        assert!(!out.contains("12 hybrid"), "{out}");
    }

    #[test]
    fn fuzz_strategy_can_be_pinned() {
        let out = run("fuzz --iters 4 --seed 9 --strategy path");
        assert!(out.contains("strategy path"), "{out}");
        assert!(out.contains("strategy runs: 0 hybrid, 0 tree, 4 path"), "{out}");
    }

    #[test]
    fn fuzz_cross_strategy_campaign_is_clean() {
        let out = run("fuzz --iters 4 --seed 17 --cross-strategy 1");
        assert!(out.contains("4 iterations clean"), "{out}");
        assert!(out.contains("cross-strategy"), "{out}");
        assert!(out.contains("strategy runs: 4 hybrid, 4 tree, 4 path"), "{out}");
    }

    #[test]
    fn run_accepts_a_strategy() {
        for strategy in ["tree", "path"] {
            let out = run(&format!(
                "run --bench art --accesses 60 --warmup 1000 --sets 32 --check 1 \
                 --strategy {strategy}"
            ));
            assert!(out.contains("invariants checked: ok"), "{strategy}: {out}");
        }
    }

    #[test]
    fn fuzz_checker_can_be_disabled() {
        let out = run("fuzz --iters 3 --seed 4 --check 0");
        assert!(out.contains("checker off"), "{out}");
    }

    #[test]
    fn perf_sweep_points_reports_warm_speedup() {
        let out = run("perf --packets 100 --sweep-points 8");
        assert!(out.contains("sweep throughput (8 screening points"), "{out}");
        assert!(out.contains("warm speedup:"), "{out}");
    }

    #[test]
    fn run_with_checker_reports_clean_invariants() {
        let out =
            run("run --bench art --accesses 60 --warmup 1000 --sets 32 --check 1");
        assert!(out.contains("invariants checked: ok"), "{out}");
    }

    #[test]
    fn perf_reports_throughput_and_writes_json() {
        let path = std::env::temp_dir().join("nucanet_cli_perf_test.json");
        let out = run(&format!("perf --packets 300 --json {}", path.display()));
        assert!(out.contains("fig7-mesh"), "{out}");
        assert!(out.contains("mesh-sat"), "{out}");
        assert!(out.contains("cycles/s"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"schema\": \"nucanet/perf-v2\""), "{json}");
        assert!(json.contains("\"halo\""), "{json}");
        assert!(json.contains("\"halo-sat\""), "{json}");
        assert!(json.contains("\"threads\": 1"), "{json}");
        assert!(json.contains("\"compute_ns\":"), "{json}");
        assert!(json.contains("\"dispatch_ns\":"), "{json}");
        assert!(json.contains("\"adaptive_serial_cycles\":"), "{json}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn perf_with_threads_reports_gate_breakdown() {
        let out = run("perf --packets 200 --sim-threads 2");
        assert!(out.contains("gate:"), "{out}");
        assert!(out.contains("parallel /"), "{out}");
        assert!(out.contains("dispatch"), "{out}");
    }

    #[test]
    fn perf_compares_against_a_recorded_trajectory() {
        let path = std::env::temp_dir().join("nucanet_cli_perf_baseline_ok.json");
        // Record once, then compare a fresh run against the recording:
        // the simulated cycles are deterministic, so every config must
        // be present with a finite ratio.
        run(&format!("perf --packets 200 --json {}", path.display()));
        let out = run(&format!("perf --packets 200 --baseline {}", path.display()));
        assert!(out.contains(&format!("vs {}", path.display())), "{out}");
        assert!(out.contains("x (recorded"), "{out}");
        assert!(!out.contains("not in baseline file"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn perf_refuses_cross_schema_baselines() {
        let path = std::env::temp_dir().join("nucanet_cli_perf_baseline_v1.json");
        std::fs::write(
            &path,
            "{\n  \"schema\": \"nucanet/perf-v1\",\n  \"runs\": []\n}\n",
        )
        .unwrap();
        let args = Args::parse(
            format!("perf --packets 100 --baseline {}", path.display())
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let err = run_command(&args).unwrap_err().to_string();
        assert!(err.contains("nucanet/perf-v1"), "{err}");
        assert!(err.contains("re-record"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_is_bit_identical_across_sim_threads() {
        // The run command prints only simulated metrics (no wall time),
        // so its whole output must match between the serial and the
        // threaded cycle kernel.
        let serial = run("run --bench art --accesses 60 --warmup 1000 --sets 32 --sim-threads 1");
        let threaded =
            run("run --bench art --accesses 60 --warmup 1000 --sets 32 --sim-threads 4");
        assert_eq!(serial, threaded);
    }

    #[test]
    fn unknown_command_errors() {
        let args = Args::parse(["frobnicate".to_string()]).unwrap();
        assert!(run_command(&args).is_err());
    }

    #[test]
    fn run_small_cell() {
        let out = run("run --bench art --accesses 80 --warmup 1500 --sets 32");
        assert!(out.contains("A / multicast+fastLRU / art"), "{out}");
        assert!(out.contains("IPC"), "{out}");
        assert!(out.contains("80 accesses"), "{out}");
    }

    #[test]
    fn run_cmp_cell() {
        let out = run("run --cores 2 --accesses 60 --warmup 1000 --sets 32 --bench twolf");
        assert!(out.contains("x2 cores"), "{out}");
        assert!(out.contains("core 0:"), "{out}");
        assert!(out.contains("core 1:"), "{out}");
    }

    #[test]
    fn compare_emits_all_schemes() {
        let out = run("compare --accesses 60 --warmup 1000 --sets 32 --bench vpr");
        for s in ["unicast+promotion", "multicast+fastLRU", "static NUCA"] {
            assert!(out.contains(s), "{out}");
        }
    }

    #[test]
    fn compare_csv_mode() {
        let out = run("compare --accesses 50 --warmup 800 --sets 32 --csv 1");
        assert!(out.starts_with("scheme,avg,hit,miss,hitrate,ipc"), "{out}");
        assert_eq!(out.lines().count(), 7, "{out}");
    }

    #[test]
    fn designs_skips_non_uniform_for_static() {
        let out = run("designs --scheme static --accesses 50 --warmup 800 --sets 32");
        assert!(out.contains("A"), "{out}");
        assert!(
            !out.contains("non-uniform"),
            "static NUCA must skip D/F: {out}"
        );
    }

    #[test]
    fn area_has_six_rows() {
        let out = cmd_area();
        assert_eq!(out.lines().count(), 8, "{out}"); // header + rule + 6 designs
    }

    #[test]
    fn census_mentions_the_claim() {
        let out = cmd_census();
        assert!(out.contains("never used"), "{out}");
    }

    #[test]
    fn sweep_lists_all_capacities() {
        let out = run("sweep --bench twolf --accesses 60 --warmup 1000 --sets 32 --workers 2");
        for mb in ["4 MB", "8 MB", "16 MB", "32 MB"] {
            assert!(out.contains(mb), "{out}");
        }
        assert!(out.contains("mesh"), "{out}");
        assert!(out.contains("halo"), "{out}");
    }

    #[test]
    fn sweep_writes_json() {
        let path = std::env::temp_dir().join("nucanet_cli_sweep_test.json");
        let out = run(&format!(
            "sweep --bench art --accesses 40 --warmup 800 --sets 32 --workers 2 --json {}",
            path.display()
        ));
        assert!(out.contains("wrote"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"schema\": \"nucanet/sweep-v2\""), "{json}");
        assert!(json.contains("\"p99\":"), "{json}");
        assert!(json.contains("\"errors\": 0"), "{json}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sweep_with_repaired_faults_completes() {
        // Transient faults (repaired after 300 cycles) drain and reroute;
        // every point should still finish and report its fault count.
        let out = run(
            "sweep --bench art --accesses 40 --warmup 800 --sets 32 --workers 2 \
             --faults 2 --fault-repair 300",
        );
        assert!(out.contains("ok (2 faults)"), "{out}");
        assert!(!out.contains("failed"), "{out}");
    }

    #[test]
    fn trace_dumps_lines() {
        let out = run("trace --bench art --accesses 25 --seed 7");
        assert_eq!(out.lines().count(), 26, "{out}"); // header + 25 accesses
        assert!(out.lines().nth(1).unwrap().starts_with("0x"), "{out}");
    }

    #[test]
    fn replay_runs_a_trace_file() {
        // Emit a trace with the trace command, write it to a temp file,
        // replay it.
        let dumped = run("trace --bench art --accesses 120 --seed 3");
        let path = std::env::temp_dir().join("nucanet_cli_replay_test.trace");
        std::fs::write(&path, format!("# warmup: 40\n{dumped}")).unwrap();
        let out = run(&format!(
            "replay --file {} --design B --scheme fastlru",
            path.display()
        ));
        assert!(out.contains("80 accesses"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_missing_file_errors() {
        let args = Args::parse(
            "replay --file /no/such/file.trace"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        assert!(run_command(&args).is_err());
    }

    #[test]
    fn energy_reports_components() {
        let out = run("energy --accesses 50 --warmup 800 --sets 32 --bench mesa");
        assert!(out.contains("pJ per access"), "{out}");
        assert!(out.contains("network share"), "{out}");
    }
}
