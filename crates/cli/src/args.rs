//! `--key value` argument parsing and domain-value lookup.

use std::collections::BTreeMap;
use std::fmt;

use nucanet::{Design, Scheme};
use nucanet_noc::MulticastStrategy;
use nucanet_workload::BenchmarkProfile;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: BTreeMap<String, String>,
}

/// Why a command line was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` had no value.
    MissingValue(String),
    /// A bare token where `--flag` was expected.
    UnexpectedToken(String),
    /// A value failed domain validation.
    BadValue {
        key: String,
        value: String,
        expected: &'static str,
    },
    /// The command parsed fine but the simulation itself aborted (for
    /// example an injected fault partitioned the network and tripped
    /// the watchdog).
    SimulationFailed(String),
    /// The options parsed but describe a machine the layout builder
    /// cannot realise (for example more cores than attachment points).
    InvalidConfig(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingCommand => write!(f, "missing subcommand"),
            ParseError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ParseError::UnexpectedToken(t) => write!(f, "unexpected token '{t}'"),
            ParseError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "bad value '{value}' for --{key}; expected {expected}")
            }
            ParseError::SimulationFailed(msg) => write!(f, "simulation failed: {msg}"),
            ParseError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl Args {
    /// Parses `tokens` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ParseError> {
        let mut it = tokens.into_iter();
        let command = it.next().ok_or(ParseError::MissingCommand)?;
        if command.starts_with("--") {
            return Err(ParseError::MissingCommand);
        }
        let mut options = BTreeMap::new();
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(ParseError::UnexpectedToken(tok));
            };
            let value = it
                .next()
                .ok_or_else(|| ParseError::MissingValue(key.to_string()))?;
            options.insert(key.to_string(), value);
        }
        Ok(Args { command, options })
    }

    /// Raw option lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Integer option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::BadValue`] if present but not an integer.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, ParseError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ParseError::BadValue {
                key: key.into(),
                value: v.into(),
                expected: "an unsigned integer",
            }),
        }
    }

    /// The `--design` option (default A).
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::BadValue`] for anything but `A`–`F`.
    pub fn design(&self) -> Result<Design, ParseError> {
        match self.get("design").unwrap_or("A") {
            "A" | "a" => Ok(Design::A),
            "B" | "b" => Ok(Design::B),
            "C" | "c" => Ok(Design::C),
            "D" | "d" => Ok(Design::D),
            "E" | "e" => Ok(Design::E),
            "F" | "f" => Ok(Design::F),
            other => Err(ParseError::BadValue {
                key: "design".into(),
                value: other.into(),
                expected: "one of A, B, C, D, E, F",
            }),
        }
    }

    /// The `--scheme` option (default `mc-fastlru`).
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::BadValue`] for unknown scheme names.
    pub fn scheme(&self) -> Result<Scheme, ParseError> {
        match self.get("scheme").unwrap_or("mc-fastlru") {
            "promotion" | "uni-promotion" => Ok(Scheme::UnicastPromotion),
            "lru" | "uni-lru" => Ok(Scheme::UnicastLru),
            "fastlru" | "uni-fastlru" => Ok(Scheme::UnicastFastLru),
            "mc-promotion" => Ok(Scheme::MulticastPromotion),
            "mc-fastlru" => Ok(Scheme::MulticastFastLru),
            "static" | "snuca" => Ok(Scheme::StaticNuca),
            other => Err(ParseError::BadValue {
                key: "scheme".into(),
                value: other.into(),
                expected: "promotion|lru|fastlru|mc-promotion|mc-fastlru|static",
            }),
        }
    }

    /// The `--strategy` option: the multicast replication strategy, or
    /// `None` when absent (callers fall back to `NUCANET_STRATEGY` and
    /// then the paper's hybrid default).
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::BadValue`] for unknown strategy names.
    pub fn strategy(&self) -> Result<Option<MulticastStrategy>, ParseError> {
        match self.get("strategy") {
            None => Ok(None),
            Some(v) => MulticastStrategy::parse(v).map(Some).ok_or_else(|| {
                ParseError::BadValue {
                    key: "strategy".into(),
                    value: v.into(),
                    expected: "hybrid|tree|path",
                }
            }),
        }
    }

    /// The `--bench` option (default `gcc`).
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::BadValue`] for names not in Table 2.
    pub fn benchmark(&self) -> Result<BenchmarkProfile, ParseError> {
        let name = self.get("bench").unwrap_or("gcc");
        BenchmarkProfile::by_name(name).ok_or_else(|| ParseError::BadValue {
            key: "bench".into(),
            value: name.into(),
            expected: "a Table 2 benchmark (applu, apsi, art, …, vpr)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ParseError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse("run --design F --bench art --accesses 500").unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.design().unwrap(), Design::F);
        assert_eq!(a.benchmark().unwrap().name, "art");
        assert_eq!(a.get_usize("accesses", 0).unwrap(), 500);
    }

    #[test]
    fn defaults_apply() {
        let a = parse("run").unwrap();
        assert_eq!(a.design().unwrap(), Design::A);
        assert_eq!(a.scheme().unwrap(), Scheme::MulticastFastLru);
        assert_eq!(a.benchmark().unwrap().name, "gcc");
        assert_eq!(a.get_usize("accesses", 1234).unwrap(), 1234);
    }

    #[test]
    fn scheme_aliases() {
        assert_eq!(
            parse("x --scheme static").unwrap().scheme().unwrap(),
            Scheme::StaticNuca
        );
        assert_eq!(
            parse("x --scheme lru").unwrap().scheme().unwrap(),
            Scheme::UnicastLru
        );
        assert_eq!(
            parse("x --scheme mc-promotion").unwrap().scheme().unwrap(),
            Scheme::MulticastPromotion
        );
    }

    #[test]
    fn strategy_parses_and_defaults_to_unset() {
        assert_eq!(parse("run").unwrap().strategy().unwrap(), None);
        assert_eq!(
            parse("run --strategy tree").unwrap().strategy().unwrap(),
            Some(MulticastStrategy::Tree)
        );
        assert_eq!(
            parse("run --strategy path").unwrap().strategy().unwrap(),
            Some(MulticastStrategy::Path)
        );
        let e = parse("run --strategy ring").unwrap().strategy().unwrap_err();
        assert!(e.to_string().contains("hybrid|tree|path"), "{e}");
    }

    #[test]
    fn rejects_bad_values() {
        assert!(matches!(
            parse("run --design Z").unwrap().design(),
            Err(ParseError::BadValue { .. })
        ));
        assert!(matches!(
            parse("run --bench quake").unwrap().benchmark(),
            Err(ParseError::BadValue { .. })
        ));
        assert!(matches!(
            parse("run --accesses many")
                .unwrap()
                .get_usize("accesses", 0),
            Err(ParseError::BadValue { .. })
        ));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(parse(""), Err(ParseError::MissingCommand));
        assert_eq!(parse("--design A"), Err(ParseError::MissingCommand));
        assert_eq!(
            parse("run --design"),
            Err(ParseError::MissingValue("design".into()))
        );
        assert_eq!(
            parse("run stray"),
            Err(ParseError::UnexpectedToken("stray".into()))
        );
    }

    #[test]
    fn errors_render_helpfully() {
        let e = parse("run --design Z").unwrap().design().unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("design") && msg.contains('Z'), "{msg}");
    }
}
