//! Technology parameters.
//!
//! The paper evaluates at a 65 nm technology node with a 5 GHz core/router
//! clock. Wire resistance and capacitance per unit length follow the
//! ITRS 2003 global-wire projections; the device intrinsic delay is the
//! `R0·C0` product that enters the optimal-repeater delay formula of
//! Otten & Brayton (first-order RC model, reference \[22\] of the paper).

/// Process/technology parameters used by every model in this crate.
///
/// Construct via [`Technology::hpca07_65nm`] for the paper's node, or
/// use struct update syntax for sweeps:
///
/// ```
/// use nucanet_timing::Technology;
/// let slow = Technology { clock_ghz: 2.5, ..Technology::hpca07_65nm() };
/// assert_eq!(slow.cycle_ps(), 400.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Feature size in nanometres (65 for the paper).
    pub feature_nm: f64,
    /// Router/core clock in GHz (5.0 in the paper).
    pub clock_ghz: f64,
    /// Global-wire resistance per millimetre, in ohms.
    pub wire_r_ohm_per_mm: f64,
    /// Global-wire capacitance per millimetre, in femtofarads.
    pub wire_c_ff_per_mm: f64,
    /// Device intrinsic delay `R0·C0` entering the repeated-wire delay
    /// formula, in picoseconds.
    pub device_tau_ps: f64,
    /// Global-wire pitch in micrometres (1 µm in the paper's link-area
    /// estimate).
    pub wire_pitch_um: f64,
    /// Effective SRAM storage area per bit, in µm², including peripheral
    /// overhead. Used for router flit buffers.
    pub sram_um2_per_bit: f64,
    /// Width of one flit in bits (128 in Table 1).
    pub flit_bits: u32,
}

impl Technology {
    /// The 65 nm / 5 GHz operating point used throughout the paper.
    ///
    /// The wire constants are chosen so that the optimally repeated
    /// global-wire delay is ≈164 ps/mm, which reproduces the paper's
    /// Table 1 per-tile wire delays (1 cycle for a 64 KB tile, 2 for
    /// 128/256 KB, 3 for 512 KB) at a 200 ps cycle.
    pub fn hpca07_65nm() -> Self {
        Technology {
            feature_nm: 65.0,
            clock_ghz: 5.0,
            wire_r_ohm_per_mm: 3000.0,
            wire_c_ff_per_mm: 250.0,
            device_tau_ps: 9.0,
            wire_pitch_um: 1.0,
            sram_um2_per_bit: 5.0,
            flit_bits: 128,
        }
    }

    /// Clock period in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `clock_ghz` is not strictly positive.
    pub fn cycle_ps(&self) -> f64 {
        assert!(self.clock_ghz > 0.0, "clock frequency must be positive");
        1000.0 / self.clock_ghz
    }

    /// Distributed wire RC product in ps per mm² (`R_w · C_w`).
    pub fn wire_rc_ps_per_mm2(&self) -> f64 {
        // ohm * fF = 1e-15 s = 1e-3 ps
        self.wire_r_ohm_per_mm * self.wire_c_ff_per_mm * 1e-3
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::hpca07_65nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_time_at_5ghz_is_200ps() {
        let t = Technology::hpca07_65nm();
        assert!((t.cycle_ps() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn wire_rc_units() {
        let t = Technology::hpca07_65nm();
        // 3000 ohm/mm * 250 fF/mm = 750 ps/mm^2
        assert!((t.wire_rc_ps_per_mm2() - 750.0).abs() < 1e-9);
    }

    #[test]
    fn default_is_paper_node() {
        assert_eq!(Technology::default(), Technology::hpca07_65nm());
    }

    #[test]
    #[should_panic(expected = "clock frequency must be positive")]
    fn zero_clock_panics() {
        let t = Technology {
            clock_ghz: 0.0,
            ..Technology::hpca07_65nm()
        };
        let _ = t.cycle_ps();
    }

    #[test]
    fn struct_update_sweep() {
        let t = Technology {
            clock_ghz: 10.0,
            ..Technology::hpca07_65nm()
        };
        assert!((t.cycle_ps() - 100.0).abs() < 1e-9);
        assert_eq!(t.feature_nm, 65.0);
    }
}
