//! Dynamic energy models (the paper's §7 future work: "energy
//! consumption analysis of the networked cache systems").
//!
//! Per-event dynamic energies at the 65 nm node:
//!
//! * **Link**: `E = C_w · V² · α` per wire per mm, times the flit width —
//!   switching the distributed wire capacitance.
//! * **Router**: buffer write + read energy (SRAM bit energy × flit
//!   width) plus crossbar traversal (output-port wire capacitance).
//! * **Bank**: Cacti-style `E(kb) = e0 + e1·√kb` — word/bit-line energy
//!   grows with the array's physical dimensions.
//! * **Off-chip memory**: a flat per-block cost dominated by I/O.
//!
//! Absolute joules are calibration-dependent; the model's value is in
//! *relative* comparisons across designs (e.g. the halo's shorter paths
//! versus the mesh), which only need the scaling shapes above.

use crate::tech::Technology;

/// Supply voltage assumed at 65 nm.
pub const VDD: f64 = 1.1;
/// Average switching activity on data wires.
pub const ACTIVITY: f64 = 0.5;
/// SRAM array energy per bit access, in picojoules.
pub const SRAM_PJ_PER_BIT: f64 = 0.05;
/// Crossbar effective capacitance per port-to-port traversal, in pF.
pub const XBAR_PF_PER_PORT: f64 = 0.2;
/// Off-chip access energy per 64-byte block, in picojoules (~10 nJ).
pub const MEM_PJ_PER_BLOCK: f64 = 10_000.0;
/// Bank access energy: fixed part, in pJ.
const BANK_E0_PJ: f64 = 80.0;
/// Bank access energy: per-√KB part, in pJ.
const BANK_E1_PJ: f64 = 28.0;

/// Per-event dynamic energy model.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    flit_bits: u32,
    wire_c_ff_per_mm: f64,
}

impl EnergyModel {
    /// Builds the model from technology parameters.
    pub fn new(tech: &Technology) -> Self {
        EnergyModel {
            flit_bits: tech.flit_bits,
            wire_c_ff_per_mm: tech.wire_c_ff_per_mm,
        }
    }

    /// Energy to move one flit over `mm` of link, in pJ.
    ///
    /// # Panics
    ///
    /// Panics if `mm` is negative or not finite.
    pub fn link_pj(&self, mm: f64) -> f64 {
        assert!(
            mm.is_finite() && mm >= 0.0,
            "link length must be non-negative"
        );
        // fF × V² = fJ; × 1e-3 → pJ.
        self.flit_bits as f64 * self.wire_c_ff_per_mm * mm * VDD * VDD * ACTIVITY * 1e-3
    }

    /// Energy for one flit to traverse a router (buffer write + read +
    /// crossbar), in pJ.
    pub fn router_pj(&self) -> f64 {
        let buffer = 2.0 * self.flit_bits as f64 * SRAM_PJ_PER_BIT;
        let xbar = XBAR_PF_PER_PORT * 1e3 * VDD * VDD * ACTIVITY; // pF → fF
        (buffer * 1e0) + xbar * 1e-3
    }

    /// Energy for one access to a bank of `kb` kilobytes, in pJ.
    ///
    /// # Panics
    ///
    /// Panics if `kb` is zero.
    pub fn bank_pj(&self, kb: u32) -> f64 {
        assert!(kb > 0, "bank capacity must be non-zero");
        BANK_E0_PJ + BANK_E1_PJ * (kb as f64).sqrt()
    }

    /// Energy for one off-chip block transfer, in pJ.
    pub fn memory_pj(&self) -> f64 {
        MEM_PJ_PER_BLOCK
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::new(&Technology::hpca07_65nm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::default()
    }

    #[test]
    fn link_energy_linear_in_length() {
        let m = model();
        let e1 = m.link_pj(1.0);
        let e2 = m.link_pj(2.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
        assert_eq!(m.link_pj(0.0), 0.0);
    }

    #[test]
    fn link_energy_ballpark() {
        // 128 wires × 250 fF/mm × 1.21 V² × 0.5 ≈ 19 pJ per flit-mm.
        let e = model().link_pj(1.0);
        assert!((10.0..40.0).contains(&e), "{e} pJ");
    }

    #[test]
    fn router_energy_ballpark() {
        // Published 65 nm routers burn ~10–30 pJ/flit.
        let e = model().router_pj();
        assert!((5.0..40.0).contains(&e), "{e} pJ");
    }

    #[test]
    fn bank_energy_grows_sublinearly() {
        let m = model();
        let e64 = m.bank_pj(64);
        let e256 = m.bank_pj(256);
        assert!(e256 > e64);
        assert!(e256 < 4.0 * e64, "energy grows like sqrt(capacity)");
    }

    #[test]
    fn memory_dominates_on_chip_events() {
        let m = model();
        assert!(m.memory_pj() > 10.0 * m.bank_pj(512));
        assert!(m.memory_pj() > 100.0 * m.router_pj());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bank_panics() {
        let _ = model().bank_pj(0);
    }
}
