#![warn(missing_docs)]
//! Technology, timing, and area models for the `nucanet` simulator.
//!
//! This crate reproduces the modelling substrate of the HPCA'07 paper
//! *"A Domain-Specific On-Chip Network Design for Large Scale Cache
//! Systems"*:
//!
//! * [`tech`] — 65 nm technology parameters (ITRS'03-style wire R/C,
//!   device intrinsic delay, 5 GHz clock, wire pitch, SRAM cell area).
//! * [`wire`] — first-order RC global-wire delay under optimal repeater
//!   insertion, and its conversion to router-clock cycles.
//! * [`cacti`] — a simplified Cacti-3.0-style cache-bank latency and area
//!   model, calibrated to the paper's Table 1 latencies.
//! * [`area`] — analytic router (flit buffer + crossbar) and link area
//!   models used by the paper's Table 4.
//! * [`energy`] — per-event dynamic energy (link / router / bank /
//!   memory), implementing the paper's §7 future-work energy analysis.
//!
//! # Example
//!
//! ```
//! use nucanet_timing::{Technology, BankModel, WireModel};
//!
//! let tech = Technology::hpca07_65nm();
//! let wire = WireModel::new(&tech);
//! let bank = BankModel::new(64); // a 64 KB bank
//!
//! // Table 1 of the paper: a 64 KB bank tag-matches in 2 cycles and its
//! // tile is crossed by a global wire in 1 cycle at 5 GHz.
//! assert_eq!(bank.tag_match_cycles(), 2);
//! assert_eq!(wire.cycles_for_mm(bank.tile_side_mm(&tech)), 1);
//! ```

pub mod area;
pub mod cacti;
pub mod energy;
pub mod tech;
pub mod wire;

pub use area::{LinkAreaModel, RouterAreaModel};
pub use cacti::{BankModel, BankTiming};
pub use energy::EnergyModel;
pub use tech::Technology;
pub use wire::WireModel;
