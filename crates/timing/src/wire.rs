//! First-order RC global-wire delay under optimal repeater insertion.
//!
//! The paper models global wires "from the first order RC model \[22\]
//! under optimal repeater insertion at 65 nm technology". With repeaters
//! inserted at the optimal spacing, the delay of a wire becomes linear in
//! its length:
//!
//! ```text
//! t(L) = 2 · sqrt(R0·C0 · R_w·C_w) · L
//! ```
//!
//! where `R0·C0` is the driving device's intrinsic delay and `R_w·C_w`
//! the distributed wire RC per unit length squared. Without repeaters the
//! delay is quadratic, `t(L) = ½·R_w·C_w·L²`; the model exposes both so
//! callers can see where repeaters start paying off.

use crate::tech::Technology;

/// Global-wire delay model for a given [`Technology`].
///
/// ```
/// use nucanet_timing::{Technology, WireModel};
/// let tech = Technology::hpca07_65nm();
/// let wire = WireModel::new(&tech);
/// // ≈164 ps/mm at the paper's node.
/// assert!((wire.repeated_delay_ps_per_mm() - 164.3).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WireModel {
    cycle_ps: f64,
    rw_cw_ps_per_mm2: f64,
    device_tau_ps: f64,
}

impl WireModel {
    /// Builds a wire model from technology parameters.
    pub fn new(tech: &Technology) -> Self {
        WireModel {
            cycle_ps: tech.cycle_ps(),
            rw_cw_ps_per_mm2: tech.wire_rc_ps_per_mm2(),
            device_tau_ps: tech.device_tau_ps,
        }
    }

    /// Delay per millimetre of an optimally repeated wire, in ps.
    pub fn repeated_delay_ps_per_mm(&self) -> f64 {
        2.0 * (self.device_tau_ps * self.rw_cw_ps_per_mm2).sqrt()
    }

    /// Delay of an optimally repeated wire of length `mm`, in ps.
    ///
    /// # Panics
    ///
    /// Panics if `mm` is negative or not finite.
    pub fn repeated_delay_ps(&self, mm: f64) -> f64 {
        assert!(
            mm.is_finite() && mm >= 0.0,
            "wire length must be non-negative"
        );
        self.repeated_delay_ps_per_mm() * mm
    }

    /// Delay of the same wire *without* repeaters (`½·R_w·C_w·L²`), in ps.
    ///
    /// # Panics
    ///
    /// Panics if `mm` is negative or not finite.
    pub fn unrepeated_delay_ps(&self, mm: f64) -> f64 {
        assert!(
            mm.is_finite() && mm >= 0.0,
            "wire length must be non-negative"
        );
        0.5 * self.rw_cw_ps_per_mm2 * mm * mm
    }

    /// Length above which repeater insertion wins, in mm.
    pub fn repeater_breakeven_mm(&self) -> f64 {
        // ½·RC·L² = 2·sqrt(τ·RC)·L  =>  L = 4·sqrt(τ/RC)
        4.0 * (self.device_tau_ps / self.rw_cw_ps_per_mm2).sqrt()
    }

    /// Number of whole clock cycles needed to traverse `mm` of repeated
    /// wire (at least 1 for any positive length; 0 for zero length).
    ///
    /// This is the per-hop link delay the NoC simulator charges for a
    /// tile of a given size.
    ///
    /// # Panics
    ///
    /// Panics if `mm` is negative or not finite.
    pub fn cycles_for_mm(&self, mm: f64) -> u32 {
        let ps = self.repeated_delay_ps(mm);
        if ps == 0.0 {
            0
        } else {
            (ps / self.cycle_ps).ceil().max(1.0) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> WireModel {
        WireModel::new(&Technology::hpca07_65nm())
    }

    #[test]
    fn repeated_delay_matches_calibration() {
        // 2*sqrt(9 * 750) = 164.31 ps/mm
        let m = model();
        assert!((m.repeated_delay_ps_per_mm() - 164.3168).abs() < 1e-3);
    }

    #[test]
    fn repeated_delay_is_linear() {
        let m = model();
        let d1 = m.repeated_delay_ps(1.0);
        let d2 = m.repeated_delay_ps(2.0);
        assert!((d2 - 2.0 * d1).abs() < 1e-9);
    }

    #[test]
    fn unrepeated_delay_is_quadratic() {
        let m = model();
        let d1 = m.unrepeated_delay_ps(1.0);
        let d2 = m.unrepeated_delay_ps(2.0);
        assert!((d2 - 4.0 * d1).abs() < 1e-9);
    }

    #[test]
    fn breakeven_point_consistent() {
        let m = model();
        let l = m.repeater_breakeven_mm();
        assert!((m.unrepeated_delay_ps(l) - m.repeated_delay_ps(l)).abs() < 1e-6);
        // Below break-even the plain wire is faster.
        assert!(m.unrepeated_delay_ps(l / 2.0) < m.repeated_delay_ps(l / 2.0));
        // Above break-even the repeated wire is faster.
        assert!(m.unrepeated_delay_ps(l * 2.0) > m.repeated_delay_ps(l * 2.0));
    }

    #[test]
    fn zero_length_has_zero_cycles() {
        assert_eq!(model().cycles_for_mm(0.0), 0);
    }

    #[test]
    fn short_wire_is_one_cycle() {
        // 1 mm -> 164 ps < 200 ps cycle.
        assert_eq!(model().cycles_for_mm(1.0), 1);
    }

    #[test]
    fn longer_wire_needs_more_cycles() {
        let m = model();
        // 2.73 mm -> 449 ps -> 3 cycles (512 KB tile per Table 1).
        assert_eq!(m.cycles_for_mm(2.73), 3);
        // 1.4 mm -> 230 ps -> 2 cycles (128 KB tile).
        assert_eq!(m.cycles_for_mm(1.4), 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_length_panics() {
        let _ = model().repeated_delay_ps(-1.0);
    }

    #[test]
    fn cycles_monotone_in_length() {
        let m = model();
        let mut prev = 0;
        for i in 0..60 {
            let c = m.cycles_for_mm(i as f64 * 0.25);
            assert!(c >= prev, "cycles must be monotone in wire length");
            prev = c;
        }
    }
}
