//! Analytic router and link area models (Table 4 of the paper).
//!
//! Following the paper (§6.3, which cites Gold's analytic model \[11\]):
//!
//! * **Router area** = flit-buffer area + crossbar area. Buffers are SRAM
//!   (`ports × VCs × depth × flit_bits` bits); the crossbar is wire
//!   dominated, `(P_in·W·pitch) × (P_out·W·pitch)`.
//! * **Link area** = width × length. A bidirectional link carrying
//!   128-bit flits is 256 wires at 1 µm pitch → 256 µm wide; length is
//!   the span of one tile.
//!
//! With the paper's parameters a 5-port router is ≈0.46 mm², so the 256
//! routers of Design A occupy ≈118 mm² — the 20.8 % share reported in
//! Table 4 — and the 3-port simplified router of Design B is well under
//! half the area of the 5-port one.

use crate::tech::Technology;

/// Analytic area model for a wormhole router.
///
/// ```
/// use nucanet_timing::{Technology, RouterAreaModel};
/// let tech = Technology::hpca07_65nm();
/// let m = RouterAreaModel::new(&tech, 4, 4);
/// let five_port = m.area_mm2(5, 5);
/// let three_port = m.area_mm2(3, 3);
/// assert!(three_port < 0.5 * five_port);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RouterAreaModel {
    flit_bits: u32,
    vcs_per_port: u32,
    buf_depth_flits: u32,
    sram_um2_per_bit: f64,
    pitch_um: f64,
}

impl RouterAreaModel {
    /// Creates a router area model with the given virtual-channel count
    /// and per-VC buffer depth (Table 1 uses 4 VCs × 4 flits).
    ///
    /// # Panics
    ///
    /// Panics if `vcs_per_port` or `buf_depth_flits` is zero.
    pub fn new(tech: &Technology, vcs_per_port: u32, buf_depth_flits: u32) -> Self {
        assert!(vcs_per_port > 0, "router needs at least one VC per port");
        assert!(
            buf_depth_flits > 0,
            "VC buffers need at least one flit slot"
        );
        RouterAreaModel {
            flit_bits: tech.flit_bits,
            vcs_per_port,
            buf_depth_flits,
            sram_um2_per_bit: tech.sram_um2_per_bit,
            pitch_um: tech.wire_pitch_um,
        }
    }

    /// Total flit-buffer area for `ports` input ports, in mm².
    pub fn buffer_area_mm2(&self, ports: u32) -> f64 {
        let bits = ports as f64
            * self.vcs_per_port as f64
            * self.buf_depth_flits as f64
            * self.flit_bits as f64;
        bits * self.sram_um2_per_bit * 1e-6
    }

    /// Crossbar area for `in_ports` × `out_ports`, in mm².
    pub fn crossbar_area_mm2(&self, in_ports: u32, out_ports: u32) -> f64 {
        let w = self.flit_bits as f64 * self.pitch_um;
        (in_ports as f64 * w) * (out_ports as f64 * w) * 1e-6
    }

    /// Total router area (buffers + crossbar), in mm².
    ///
    /// # Panics
    ///
    /// Panics if either port count is zero.
    pub fn area_mm2(&self, in_ports: u32, out_ports: u32) -> f64 {
        assert!(
            in_ports > 0 && out_ports > 0,
            "router needs at least one port"
        );
        self.buffer_area_mm2(in_ports) + self.crossbar_area_mm2(in_ports, out_ports)
    }
}

/// Analytic area model for an inter-router link.
///
/// ```
/// use nucanet_timing::{Technology, LinkAreaModel};
/// let m = LinkAreaModel::new(&Technology::hpca07_65nm());
/// // A bidirectional 128-bit link is 256 wires at 1 µm pitch.
/// assert!((m.width_mm(true) - 0.256).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinkAreaModel {
    flit_bits: u32,
    pitch_um: f64,
}

impl LinkAreaModel {
    /// Creates a link area model from technology parameters.
    pub fn new(tech: &Technology) -> Self {
        LinkAreaModel {
            flit_bits: tech.flit_bits,
            pitch_um: tech.wire_pitch_um,
        }
    }

    /// Link width in mm; a bidirectional link has twice the wires.
    pub fn width_mm(&self, bidirectional: bool) -> f64 {
        let wires = if bidirectional {
            2 * self.flit_bits
        } else {
            self.flit_bits
        };
        wires as f64 * self.pitch_um * 1e-3
    }

    /// Area of a link of `len_mm` millimetres, in mm².
    ///
    /// # Panics
    ///
    /// Panics if `len_mm` is negative or not finite.
    pub fn area_mm2(&self, len_mm: f64, bidirectional: bool) -> f64 {
        assert!(
            len_mm.is_finite() && len_mm >= 0.0,
            "link length must be non-negative"
        );
        self.width_mm(bidirectional) * len_mm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::hpca07_65nm()
    }

    #[test]
    fn five_port_router_matches_table4_calibration() {
        let m = RouterAreaModel::new(&tech(), 4, 4);
        let a = m.area_mm2(5, 5);
        // 256 of these should be ~118 mm^2 (20.8% of Design A's 567.7).
        assert!((256.0 * a - 118.0).abs() < 3.0, "got {}", 256.0 * a);
    }

    #[test]
    fn crossbar_dominates_at_five_ports() {
        let m = RouterAreaModel::new(&tech(), 4, 4);
        assert!(m.crossbar_area_mm2(5, 5) > 4.0 * m.buffer_area_mm2(5));
    }

    #[test]
    fn simplified_router_is_much_smaller() {
        let m = RouterAreaModel::new(&tech(), 4, 4);
        let ratio = m.area_mm2(3, 3) / m.area_mm2(5, 5);
        // The paper reports the 3-port router at 48% of the 5-port one;
        // our analytic model gives ~39%. Either way: well under half.
        assert!(ratio < 0.5, "ratio {ratio}");
        assert!(ratio > 0.2, "ratio {ratio}");
    }

    #[test]
    fn buffer_area_scales_with_vcs_and_depth() {
        let base = RouterAreaModel::new(&tech(), 4, 4).buffer_area_mm2(5);
        let more_vcs = RouterAreaModel::new(&tech(), 8, 4).buffer_area_mm2(5);
        let deeper = RouterAreaModel::new(&tech(), 4, 8).buffer_area_mm2(5);
        assert!((more_vcs - 2.0 * base).abs() < 1e-12);
        assert!((deeper - 2.0 * base).abs() < 1e-12);
    }

    #[test]
    fn crossbar_area_quadratic_in_ports() {
        let m = RouterAreaModel::new(&tech(), 4, 4);
        let a5 = m.crossbar_area_mm2(5, 5);
        let a10 = m.crossbar_area_mm2(10, 10);
        assert!((a10 - 4.0 * a5).abs() < 1e-9);
    }

    #[test]
    fn unidirectional_link_is_half_width() {
        let m = LinkAreaModel::new(&tech());
        assert!((m.width_mm(false) * 2.0 - m.width_mm(true)).abs() < 1e-12);
    }

    #[test]
    fn link_area_linear_in_length() {
        let m = LinkAreaModel::new(&tech());
        assert!((m.area_mm2(2.0, true) - 2.0 * m.area_mm2(1.0, true)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_panics() {
        let _ = RouterAreaModel::new(&tech(), 4, 4).area_mm2(0, 5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_link_length_panics() {
        let _ = LinkAreaModel::new(&tech()).area_mm2(-1.0, true);
    }
}
