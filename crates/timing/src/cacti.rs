//! Simplified Cacti-3.0-style cache-bank latency and area model.
//!
//! The paper "models the latency of the bank from Cacti 3.0" and extracts
//! bank area "from Cacti model". We reproduce the observable outputs with
//! an analytic model calibrated at 65 nm:
//!
//! * **Latency** — the underlying access time in picoseconds is stored at
//!   the paper's four calibration capacities (Table 1) and interpolated
//!   log-linearly for other capacities, then quantised to 5 GHz cycles.
//!   This regenerates Table 1 exactly:
//!
//!   | bank | tag match | tag match + replacement |
//!   |------|-----------|-------------------------|
//!   | 64 KB  | 2 | 3 |
//!   | 128 KB | 4 | 4 |
//!   | 256 KB | 4 | 5 |
//!   | 512 KB | 5 | 6 |
//!
//! * **Area** — `area(kb) = A_fixed + a·kb`: a fixed peripheral overhead
//!   (decoder, sense amps, I/O) plus a per-kilobyte array cost. The fixed
//!   term is what makes many small banks cost more silicon than few large
//!   ones, which drives the paper's Table 4 (Design F's non-uniform banks
//!   use less area than Design A's 256 uniform banks).

use crate::tech::Technology;
use crate::wire::WireModel;

/// Calibration capacities (KB) from Table 1 of the paper.
const CAL_KB: [f64; 4] = [64.0, 128.0, 256.0, 512.0];
/// Tag-match access time (ps) at the calibration capacities.
const CAL_TAG_PS: [f64; 4] = [390.0, 650.0, 780.0, 940.0];
/// Tag-match + replacement access time (ps) at the calibration capacities.
const CAL_REPL_PS: [f64; 4] = [560.0, 760.0, 900.0, 1150.0];

/// Fixed per-bank peripheral area in mm² (decoder, sense amps, I/O).
const BANK_FIXED_MM2: f64 = 0.146;
/// Data/tag array area per KB in mm².
const BANK_PER_KB_MM2: f64 = 0.01428;

/// Latency pair for one bank size, in router-clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankTiming {
    /// Cycles for a tag-match-only access (read probe that misses, or a
    /// hit lookup before any data movement).
    pub tag_match: u32,
    /// Cycles for an access that also replaces/installs a block.
    pub tag_match_replace: u32,
}

/// Analytic model of one cache bank of a given capacity.
///
/// ```
/// use nucanet_timing::BankModel;
/// let b = BankModel::new(256);
/// assert_eq!(b.tag_match_cycles(), 4);
/// assert_eq!(b.tag_match_replace_cycles(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankModel {
    capacity_kb: u32,
}

/// Piecewise log-linear interpolation over the calibration points.
fn interp_ps(kb: f64, table: &[f64; 4]) -> f64 {
    let x = kb.log2();
    let xs: Vec<f64> = CAL_KB.iter().map(|k| k.log2()).collect();
    if x <= xs[0] {
        // Extrapolate below with the first segment's slope, floored at a
        // plausible minimum sense-amp time.
        let slope = (table[1] - table[0]) / (xs[1] - xs[0]);
        return (table[0] + slope * (x - xs[0])).max(100.0);
    }
    if x >= xs[3] {
        let slope = (table[3] - table[2]) / (xs[3] - xs[2]);
        return table[3] + slope * (x - xs[3]);
    }
    for i in 0..3 {
        if x <= xs[i + 1] {
            let f = (x - xs[i]) / (xs[i + 1] - xs[i]);
            return table[i] + f * (table[i + 1] - table[i]);
        }
    }
    unreachable!("log2 capacity not bracketed by calibration table")
}

impl BankModel {
    /// Creates a model for a bank of `capacity_kb` kilobytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_kb` is zero.
    pub fn new(capacity_kb: u32) -> Self {
        assert!(capacity_kb > 0, "bank capacity must be non-zero");
        BankModel { capacity_kb }
    }

    /// The bank capacity in kilobytes.
    pub fn capacity_kb(&self) -> u32 {
        self.capacity_kb
    }

    /// Raw tag-match access time in picoseconds.
    pub fn tag_match_ps(&self) -> f64 {
        interp_ps(self.capacity_kb as f64, &CAL_TAG_PS)
    }

    /// Raw tag-match + replacement access time in picoseconds.
    pub fn tag_match_replace_ps(&self) -> f64 {
        interp_ps(self.capacity_kb as f64, &CAL_REPL_PS)
    }

    /// Tag-match latency in cycles at the paper's 5 GHz clock.
    pub fn tag_match_cycles(&self) -> u32 {
        quantise(self.tag_match_ps(), 200.0)
    }

    /// Tag-match + replacement latency in cycles at 5 GHz.
    pub fn tag_match_replace_cycles(&self) -> u32 {
        quantise(self.tag_match_replace_ps(), 200.0)
    }

    /// Both latencies as a [`BankTiming`] at an arbitrary clock.
    pub fn timing_at(&self, tech: &Technology) -> BankTiming {
        let cyc = tech.cycle_ps();
        BankTiming {
            tag_match: quantise(self.tag_match_ps(), cyc),
            tag_match_replace: quantise(self.tag_match_replace_ps(), cyc),
        }
    }

    /// Silicon area of the bank in mm².
    pub fn area_mm2(&self) -> f64 {
        BANK_FIXED_MM2 + BANK_PER_KB_MM2 * self.capacity_kb as f64
    }

    /// Side length of the (square) bank tile in mm.
    ///
    /// The per-hop wire delay of a tile is
    /// `WireModel::cycles_for_mm(tile_side_mm)`; with the paper's node
    /// this yields Table 1's 1/2/2/3 cycles for 64/128/256/512 KB.
    pub fn tile_side_mm(&self, _tech: &Technology) -> f64 {
        self.area_mm2().sqrt()
    }

    /// Per-hop wire (link) delay in cycles for this bank's tile.
    pub fn tile_wire_cycles(&self, tech: &Technology) -> u32 {
        WireModel::new(tech).cycles_for_mm(self.tile_side_mm(tech))
    }
}

fn quantise(ps: f64, cycle_ps: f64) -> u32 {
    (ps / cycle_ps).ceil().max(1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_tag_match_cycles() {
        let expect = [(64, 2), (128, 4), (256, 4), (512, 5)];
        for (kb, cyc) in expect {
            assert_eq!(BankModel::new(kb).tag_match_cycles(), cyc, "{kb} KB");
        }
    }

    #[test]
    fn table1_replace_cycles() {
        let expect = [(64, 3), (128, 4), (256, 5), (512, 6)];
        for (kb, cyc) in expect {
            assert_eq!(
                BankModel::new(kb).tag_match_replace_cycles(),
                cyc,
                "{kb} KB"
            );
        }
    }

    #[test]
    fn table1_wire_delays() {
        let tech = Technology::hpca07_65nm();
        let expect = [(64, 1), (128, 2), (256, 2), (512, 3)];
        for (kb, cyc) in expect {
            assert_eq!(BankModel::new(kb).tile_wire_cycles(&tech), cyc, "{kb} KB");
        }
    }

    #[test]
    fn latency_monotone_in_capacity() {
        let mut prev = 0.0;
        for kb in [8, 16, 32, 64, 96, 128, 192, 256, 384, 512, 1024, 2048] {
            let ps = BankModel::new(kb).tag_match_ps();
            assert!(ps >= prev, "{kb} KB latency regressed");
            prev = ps;
        }
    }

    #[test]
    fn replace_never_faster_than_tag_match() {
        for kb in [16, 64, 100, 128, 200, 256, 300, 512, 1024] {
            let b = BankModel::new(kb);
            assert!(b.tag_match_replace_ps() >= b.tag_match_ps());
            assert!(b.tag_match_replace_cycles() >= b.tag_match_cycles());
        }
    }

    #[test]
    fn area_linear_with_fixed_overhead() {
        let a64 = BankModel::new(64).area_mm2();
        let a128 = BankModel::new(128).area_mm2();
        // Doubling capacity less than doubles area because of the fixed term.
        assert!(a128 < 2.0 * a64);
        assert!(a128 > a64);
    }

    #[test]
    fn sixteen_mb_of_64kb_banks_matches_table4_scale() {
        // Design A: 256 x 64 KB banks; Table 4 attributes ~271 mm^2 to banks.
        let total: f64 = (0..256).map(|_| BankModel::new(64).area_mm2()).sum();
        assert!((total - 271.0).abs() < 5.0, "got {total}");
    }

    #[test]
    fn non_uniform_spike_uses_less_area_than_uniform() {
        // One spike of Design F: 64+64+128+256+512 KB vs 16 x 64 KB.
        let non_uniform: f64 = [64, 64, 128, 256, 512]
            .iter()
            .map(|&kb| BankModel::new(kb).area_mm2())
            .sum();
        let uniform: f64 = (0..16).map(|_| BankModel::new(64).area_mm2()).sum();
        assert!(non_uniform < uniform);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = BankModel::new(0);
    }

    #[test]
    fn interpolation_between_calibration_points() {
        // 192 KB sits between 128 and 256 KB.
        let b = BankModel::new(192);
        assert!(b.tag_match_ps() > BankModel::new(128).tag_match_ps());
        assert!(b.tag_match_ps() < BankModel::new(256).tag_match_ps());
    }

    #[test]
    fn extrapolation_is_sane() {
        // Tiny banks are floored; huge banks keep growing.
        assert!(BankModel::new(1).tag_match_ps() >= 100.0);
        assert!(BankModel::new(4096).tag_match_ps() > BankModel::new(512).tag_match_ps());
    }

    #[test]
    fn timing_at_slower_clock_needs_fewer_cycles() {
        let slow = Technology {
            clock_ghz: 1.0,
            ..Technology::hpca07_65nm()
        };
        let t = BankModel::new(512).timing_at(&slow);
        assert_eq!(t.tag_match, 1);
        assert_eq!(t.tag_match_replace, 2);
    }
}
