//! Quickstart: build the paper's best system (Design F halo + Multicast
//! Fast-LRU), run a synthetic `gcc` workload through it, and print what
//! came out.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nucanet::{CacheSystem, Design, Scheme};
use nucanet_workload::{BenchmarkProfile, CoreModel, SynthConfig, TraceGenerator};

fn main() {
    // 1. Pick a design and a replacement scheme (Table 3 / Fig. 8).
    let cfg = Design::F.config(Scheme::MulticastFastLru);
    println!(
        "system: {} — {}",
        cfg.name,
        Design::F.interconnect_description()
    );
    println!(
        "        {} columns x {} ways, {} MB total, scheme {}",
        cfg.columns,
        cfg.total_ways(),
        cfg.capacity_bytes() >> 20,
        cfg.scheme
    );

    // 2. Generate a SPEC2000-like L2 access trace (Table 2 profile).
    let profile = BenchmarkProfile::by_name("gcc").expect("gcc is in Table 2");
    let mut gen = TraceGenerator::new(
        profile,
        SynthConfig {
            active_sets: 256,
            seed: 42,
            ..Default::default()
        },
    );
    let trace = gen.generate(20_000, 3_000);
    println!(
        "workload: {} ({:.3} L2 accesses/instr, {:.0}% writes), {} warm-up + {} measured",
        profile.name,
        profile.accesses_per_instr(),
        100.0 * profile.write_fraction(),
        trace.warmup().len(),
        trace.measured_len()
    );

    // 3. Simulate: functional warm-up, then the timed window over the
    //    flit-level network.
    let mut sys = CacheSystem::new(&cfg);
    let m = sys.run(&trace).expect("no faults injected");

    // 4. Report.
    let (bank, net, mem) = m.latency_breakdown();
    println!(
        "\nresults over {} accesses ({} simulated cycles):",
        m.accesses(),
        m.cycles
    );
    println!("  hit rate             {:.3}", m.hit_rate());
    println!(
        "  avg access latency   {:.1} cycles (data arrival: {:.1})",
        m.avg_latency(),
        m.avg_data_latency()
    );
    println!(
        "  avg hit / miss       {:.1} / {:.1} cycles",
        m.avg_hit_latency(),
        m.avg_miss_latency()
    );
    println!(
        "  latency split        bank {:.0}% / network {:.0}% / memory {:.0}%",
        100.0 * bank,
        100.0 * net,
        100.0 * mem
    );
    println!(
        "  MRU-bank hit share   {:.0}%",
        100.0 * m.mru_concentration()
    );
    println!(
        "  IPC (core model)     {:.3} (perfect-L2 IPC {:.2})",
        m.ipc(&CoreModel::for_profile(&profile)),
        profile.perfect_l2_ipc
    );
    println!(
        "  network              {} packets, {} multicast replicas, {} blocked cycles",
        m.net.packets_delivered, m.net.replications, m.net.replication_blocked_cycles
    );
}
