//! Area report (Table 4 extended to all six designs): bank / router /
//! link breakdown, L2 area, chip bounding box, and die utilisation.
//!
//! ```text
//! cargo run --release --example area_report
//! ```

use nucanet::area::{analyze, unused_area_mm2};
use nucanet::config::ALL_DESIGNS;

fn main() {
    println!("Area analysis at 65 nm (extends the paper's Table 4 to all designs)\n");
    println!(
        "{:8} {:>7} {:>8} {:>7} {:>11} {:>11} {:>12} {:>9}",
        "design", "bank%", "router%", "link%", "L2 [mm2]", "chip [mm2]", "unused [mm2]", "L2/chip"
    );
    println!("{}", "-".repeat(82));
    for d in ALL_DESIGNS {
        let a = analyze(d);
        let (b, r, l) = a.breakdown.shares();
        println!(
            "{:8} {:>7.1} {:>8.1} {:>7.1} {:>11.2} {:>11.2} {:>12.2} {:>9.2}",
            format!("{d:?}"),
            100.0 * b,
            100.0 * r,
            100.0 * l,
            a.breakdown.l2_mm2(),
            a.chip_mm2,
            unused_area_mm2(&a),
            a.breakdown.l2_mm2() / a.chip_mm2,
        );
    }
    println!("{}", "-".repeat(82));
    println!("paper Table 4:  A 47.8/20.8/31.4  567.70 / 567.70");
    println!("                B 58.4/13.0/28.6  464.60 / 521.99");
    println!("                E 67.5/14.1/18.4  402.30 / 1602.22");
    println!("                F 78.7/ 5.7/15.7  312.19 / 517.61");

    let a = analyze(nucanet::Design::A);
    let f = analyze(nucanet::Design::F);
    let net = |x: &nucanet::DesignArea| x.breakdown.router_mm2 + x.breakdown.link_mm2;
    println!(
        "\nDesign F interconnect = {:.0}% of Design A's (paper abstract: 23%)",
        100.0 * net(&f) / net(&a)
    );
}
