//! Replacement-scheme showdown (Fig. 8 in miniature): run one benchmark
//! through all five schemes on the Design A network and compare
//! latencies, hit distribution, and IPC.
//!
//! ```text
//! cargo run --release --example replacement_showdown [benchmark]
//! ```
//!
//! `benchmark` defaults to `twolf`; any Table 2 name works.

use nucanet::experiments::{run_cell, ExperimentScale};
use nucanet::scheme::ALL_SCHEMES;
use nucanet::{Design, Scheme};
use nucanet_workload::BenchmarkProfile;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "twolf".into());
    let Some(profile) = BenchmarkProfile::by_name(&name) else {
        eprintln!("unknown benchmark '{name}'; pick one of Table 2's twelve");
        std::process::exit(2);
    };
    let scale = ExperimentScale {
        warmup: 20_000,
        measured: 2_000,
        active_sets: 256,
        seed: 7,
    };
    println!(
        "benchmark {name}: {} measured accesses on the Design A 16x16 mesh\n",
        scale.measured
    );
    println!(
        "{:22} {:>8} {:>8} {:>8} {:>7} {:>7} {:>22}",
        "scheme", "avg", "hit", "miss", "hitrate", "ipc", "hits in banks 0/1/2+"
    );
    for scheme in ALL_SCHEMES.into_iter().chain([Scheme::StaticNuca]) {
        let (m, ipc) = run_cell(Design::A, scheme, &profile, scale);
        let h = m.hits_by_position();
        let total: u64 = h.iter().sum::<u64>().max(1);
        let rest: u64 = h.iter().skip(2).sum();
        println!(
            "{:22} {:>8.1} {:>8.1} {:>8.1} {:>7.3} {:>7.3} {:>9}",
            scheme.name(),
            m.avg_latency(),
            m.avg_hit_latency(),
            m.avg_miss_latency(),
            m.hit_rate(),
            ipc,
            format!(
                "{:.0}%/{:.0}%/{:.0}%",
                100 * h[0] / total,
                100 * h.get(1).copied().unwrap_or(0) / total,
                100 * rest / total
            ),
        );
    }
    println!("\nexpected shape (paper §6.1): LRU slightly worse than promotion in");
    println!("unicast; Fast-LRU well below both; Multicast Fast-LRU lowest overall,");
    println!("with LRU-family schemes concentrating hits in the MRU (bank 0).");
    println!("static NUCA (extra baseline, not in Fig. 8) spreads hits uniformly");
    println!("over the home banks, which is exactly what D-NUCA migration avoids.");
}
