//! Energy report (the paper's §7 future work): dynamic energy per L2
//! access across the six designs, split into link / router / bank /
//! memory, plus the on-demand power-gating estimate.
//!
//! ```text
//! cargo run --release --example energy_report
//! ```

use nucanet::config::ALL_DESIGNS;
use nucanet::energy::{energy_of_run, gating_estimate};
use nucanet::experiments::{run_cell, ExperimentScale};
use nucanet::{Design, Scheme};
use nucanet_workload::BenchmarkProfile;

fn main() {
    let profile = BenchmarkProfile::by_name("twolf").expect("twolf is in Table 2");
    let scale = ExperimentScale {
        warmup: 15_000,
        measured: 1_500,
        active_sets: 256,
        seed: 9,
    };
    println!("dynamic energy per L2 access, twolf, multicast fastLRU\n");
    println!(
        "{:8} {:>9} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "design", "link pJ", "router pJ", "bank pJ", "mem pJ", "total pJ", "net share"
    );
    println!("{}", "-".repeat(70));
    for d in ALL_DESIGNS {
        let cfg = d.config(Scheme::MulticastFastLru);
        let (m, _) = run_cell(d, Scheme::MulticastFastLru, &profile, scale);
        let e = energy_of_run(&cfg, &m);
        let n = m.accesses() as f64;
        println!(
            "{:8} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>11.1} {:>8.0}%",
            format!("{d:?}"),
            e.link_pj / n,
            e.router_pj / n,
            e.bank_pj / n,
            e.memory_pj / n,
            e.per_access_pj(),
            100.0 * e.network_share()
        );
    }
    println!("{}", "-".repeat(70));
    println!("expected shape: the halo (E, F) moves fewer flits over fewer hops,");
    println!("so its network energy undercuts the meshes; off-chip misses dominate");
    println!("whenever the workload streams.\n");

    println!("on-demand power gating (turn off the farthest banks of each set):");
    for d in [Design::A, Design::F] {
        println!("  {d:?}:");
        let max_off = d.config(Scheme::MulticastFastLru).bank_kb.len() - 1;
        for off in 1..=max_off.min(3) {
            let g = gating_estimate(d, off);
            println!(
                "    off {off} bank(s)/set: {} ways stay on, leakage saved {:.0}%",
                g.ways_on,
                100.0 * g.leakage_saved
            );
        }
    }
    println!("\n(capacity loss costs hits; rerun a workload with a smaller `ways` in");
    println!(" nucanet_cache::CacheModel to quantify the hit-rate side of the trade)");
}
