//! Topology explorer: builds the paper's three network families, prints
//! their structure, proves deadlock freedom of the routing (channel
//! dependency graph acyclicity + the Fig. 5 channel enumeration), and
//! shows distance profiles from the core.
//!
//! ```text
//! cargo run --release --example topology_explorer
//! ```

use nucanet_noc::deadlock::path_is_increasing;
use nucanet_noc::{ChannelDependencyGraph, NodeId, RoutingSpec, Topology};

fn unit(n: u16) -> Vec<u32> {
    vec![1; n as usize]
}

fn main() {
    // --- Full mesh with XY (Design A) ---
    let mesh = Topology::mesh(16, 16, &unit(15), &unit(15));
    let xy = RoutingSpec::Xy
        .build(&mesh)
        .expect("XY routes the full mesh");
    let core = mesh.node_at(7, 0);
    println!(
        "16x16 mesh (Design A): {} routers, {} unidirectional links",
        mesh.len(),
        mesh.link_count()
    );
    let cdg = ChannelDependencyGraph::from_all_pairs(&mesh, &xy);
    println!(
        "  XY routing: CDG acyclic = {} ({} dependency edges)",
        cdg.analyze().acyclic,
        cdg.edge_count()
    );
    let far = mesh.node_at(0, 15);
    println!(
        "  hops core→MRU banks: min 0 … max {}; core→farthest LRU bank: {}",
        (0..16)
            .map(|c| xy.hops(&mesh, core, mesh.node_at(c, 0)).unwrap())
            .max()
            .unwrap(),
        xy.hops(&mesh, core, far).unwrap()
    );

    // --- Simplified mesh with XYX (Design B) ---
    let simp = Topology::simplified_mesh(16, 16, &unit(15), &unit(15));
    let xyx = RoutingSpec::Xyx
        .build(&simp)
        .expect("XYX routes the simplified mesh");
    println!(
        "\n16x16 simplified mesh (Design B): {} links ({} removed vs full mesh)",
        simp.link_count(),
        mesh.link_count() - simp.link_count()
    );
    let cdg = ChannelDependencyGraph::from_all_pairs(&simp, &xyx);
    let report = cdg.analyze();
    println!("  XYX routing: CDG acyclic = {}", report.acyclic);
    let enumeration = cdg.enumeration().expect("XYX admits a total channel order");
    // Verify the Fig. 5 claim on every routable pair.
    let mut checked = 0u32;
    for a in 0..simp.len() as u32 {
        for b in 0..simp.len() as u32 {
            if let Some(path) = xyx.path(&simp, NodeId(a), NodeId(b)) {
                assert!(path_is_increasing(&enumeration, &path));
                checked += 1;
            }
        }
    }
    println!(
        "  channel enumeration exists; {checked} routed paths follow strictly increasing numbers"
    );

    // --- Halo (Designs E/F) ---
    let halo = Topology::halo(16, 5, &[1, 1, 2, 2, 3], 5);
    let sp = RoutingSpec::ShortestPath.build(&halo).expect("halo routes");
    println!(
        "\n16-spike halo, spike length 5 (Design F): {} routers, {} links",
        halo.len(),
        halo.link_count()
    );
    let hub = NodeId(0);
    let mru_hops: Vec<u32> = (0..16)
        .map(|s| sp.hops(&halo, hub, halo.spike_node(s, 0)).unwrap())
        .collect();
    println!(
        "  every MRU bank is exactly {} hop(s) from the core (the halo property)",
        mru_hops[0]
    );
    assert!(mru_hops.iter().all(|&h| h == mru_hops[0]));
    println!(
        "  farthest bank: {} hops, {} cycles of wire",
        sp.hops(&halo, hub, halo.spike_node(0, 4)).unwrap(),
        sp.path_delay(&halo, hub, halo.spike_node(0, 4)).unwrap()
    );
    let cdg = ChannelDependencyGraph::from_all_pairs(&halo, &sp);
    println!(
        "  shortest-path routing: CDG acyclic = {}",
        cdg.analyze().acyclic
    );
}
