//! CMP cache sharing (the paper's §7 future work): several cores share
//! the networked L2. Each core gets its own controller and network
//! attachment; bank-set serialisation is shared, so cross-core accesses
//! to one set never interleave mid-replacement.
//!
//! ```text
//! cargo run --release --example cmp_sharing [n_cores]
//! ```

use nucanet::{CacheSystem, Design, Scheme};
use nucanet_workload::{BenchmarkProfile, SynthConfig, TraceGenerator};

fn main() {
    let n_cores: u16 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let names = [
        "gcc", "twolf", "vpr", "mcf", "bzip2", "parser", "galgel", "apsi",
    ];
    println!("{n_cores} cores sharing a Design A 16x16 mesh L2 (multicast fastLRU)\n");

    for design in [Design::A, Design::F] {
        let cfg = design.config(Scheme::MulticastFastLru);
        let mut sys = CacheSystem::with_cores(&cfg, n_cores);
        let traces: Vec<_> = (0..n_cores as usize)
            .map(|i| {
                let profile =
                    BenchmarkProfile::by_name(names[i % names.len()]).expect("profile exists");
                let mut gen = TraceGenerator::new(
                    profile,
                    SynthConfig {
                        active_sets: 256,
                        seed: 100 + i as u64,
                        ..Default::default()
                    },
                );
                gen.generate(10_000, 1_500)
            })
            .collect();
        let ms = sys.run_cmp(&traces).expect("no faults injected");

        println!("{}:", cfg.name);
        for (i, m) in ms.iter().enumerate() {
            println!(
                "  core {i} ({:8}): {} accesses, avg latency {:7.1}, hit rate {:.3}",
                names[i % names.len()],
                m.accesses(),
                m.avg_latency(),
                m.hit_rate()
            );
        }
        let total: usize = ms.iter().map(|m| m.accesses()).sum();
        println!(
            "  system: {total} accesses in {} cycles ({:.2} accesses/kcycle), {} packets\n",
            ms[0].cycles,
            1000.0 * total as f64 / ms[0].cycles as f64,
            ms[0].net.packets_delivered
        );
    }
    println!("(the halo serves multi-core traffic through per-core hub interfaces,");
    println!(" so its short spikes help CMP sharing as well)");
}
