//! Link census: reproduces §1's observation that a large fraction of
//! mesh links is never used by cache traffic, both statically (routed
//! flows) and dynamically (flit counters from a real simulation), and
//! measures how rarely the hybrid multicast replication blocks (§3.1).
//!
//! ```text
//! cargo run --release --example link_census
//! ```

use nucanet::experiments::{run_cell, ExperimentScale};
use nucanet::{Design, Scheme};
use nucanet_noc::{LinkCensus, NodeId, RoutingSpec, Topology};
use nucanet_workload::BenchmarkProfile;

fn unit(n: u16) -> Vec<u32> {
    vec![1; n as usize]
}

fn main() {
    // Static census: route every flow of Fig. 4(a) and mark used links.
    let topo = Topology::mesh(16, 16, &unit(15), &unit(15));
    let rt = RoutingSpec::Xy
        .build(&topo)
        .expect("full mesh routes under XY");
    let core = topo.node_at(7, 0);
    let memory = topo.node_at(8, 15);
    let mut flows: Vec<(NodeId, NodeId)> = Vec::new();
    for c in 0..16 {
        for r in 0..16 {
            let bank = topo.node_at(c, r);
            flows.push((core, bank)); // requests (A, B)
            flows.push((bank, core)); // replies (D, E)
            if r + 1 < 16 {
                flows.push((bank, topo.node_at(c, r + 1))); // push-down (B, C)
                flows.push((topo.node_at(c, r + 1), bank));
            }
        }
        flows.push((memory, topo.node_at(c, 0))); // fills (F)
        flows.push((topo.node_at(c, 15), memory)); // writebacks (G)
    }
    flows.push((core, memory));
    flows.push((memory, core));
    let census = LinkCensus::from_flows(&topo, &rt, &flows);
    println!(
        "static census (16x16 mesh, XY, all cache flows): {}/{} links never used ({:.0}%)",
        census.unused(),
        census.total(),
        100.0 * census.unused_fraction()
    );
    println!("paper §1: \"20% of the links in a mesh network are never used\"\n");

    // Dynamic census: actual flit counters from a simulated run.
    let profile = BenchmarkProfile::by_name("mcf").expect("mcf is in Table 2");
    let scale = ExperimentScale {
        warmup: 15_000,
        measured: 1_500,
        active_sets: 256,
        seed: 3,
    };
    let (m, _) = run_cell(Design::A, Scheme::MulticastFastLru, &profile, scale);
    let dynamic = LinkCensus::from_stats(&m.net);
    println!(
        "dynamic census (mcf on Design A, multicast fastLRU): {}/{} links idle ({:.0}%)",
        dynamic.unused(),
        dynamic.total(),
        100.0 * dynamic.unused_fraction()
    );
    println!(
        "multicast replication: {} replicas created, {} cycles blocked over {} cycles",
        m.net.replications, m.net.replication_blocked_cycles, m.cycles
    );
    println!("paper §3.1: \"blocking rarely happens in the cache systems\"");

    // The simplified mesh removes what the census shows to be idle.
    let simp = Topology::simplified_mesh(16, 16, &unit(15), &unit(15));
    println!(
        "\nsimplified mesh keeps {}/{} links; the removed {} are the idle horizontal ones",
        simp.link_count(),
        topo.link_count(),
        topo.link_count() - simp.link_count()
    );
}
