//! `nucanet-suite` — shared helpers for the workspace-level examples
//! and integration tests of the `nucanet` HPCA'07 reproduction.
//!
//! The actual library lives in the `nucanet` crate (and its substrate
//! crates `nucanet-noc`, `nucanet-cache`, `nucanet-workload`,
//! `nucanet-timing`); this package only hosts the runnable examples
//! under `examples/` and the cross-crate tests under `tests/`.

use nucanet::experiments::ExperimentScale;

/// The scale used by integration tests: small enough for CI, large
/// enough that warm caches dominate cold misses.
pub fn test_scale() -> ExperimentScale {
    ExperimentScale {
        warmup: 6_000,
        measured: 500,
        active_sets: 64,
        seed: 0xBEEF,
    }
}

/// Deterministic LCG used by tests that need cheap pseudo-randomness
/// without pulling `rand` into every test body.
#[derive(Debug, Clone)]
pub struct Lcg(pub u64);

impl Lcg {
    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range must be non-empty");
        (self.next_u64() >> 16) % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg(1);
        let mut b = Lcg(1);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut g = Lcg(7);
        for _ in 0..100 {
            assert!(g.below(13) < 13);
        }
    }
}
