//! Fault-schedule edge cases on the live network, with the runtime
//! invariant checker armed throughout: same-cycle fail+repair, a fully
//! disconnected destination, and duplicate faults on an already-masked
//! link.

use nucanet_noc::{
    Dest, Endpoint, FaultEvent, FaultSchedule, LinkId, Network, NodeId, Packet, RouterParams,
    RoutingSpec, SimError, Topology,
};

/// 2×2 mesh with unit delays, XY routing, invariant checker on.
fn mesh_net(watchdog: u64) -> Network<()> {
    let topo = Topology::mesh(2, 2, &[1], &[1]);
    let table = RoutingSpec::Xy.build(&topo).expect("mesh routes");
    let params = RouterParams {
        watchdog_cycles: watchdog,
        ..RouterParams::hpca07()
    };
    let mut net = Network::new(topo, table, params);
    net.enable_invariant_checker();
    net
}

fn links_into(net: &Network<()>, node: NodeId) -> Vec<LinkId> {
    (0..net.topology().link_count() as u32)
        .map(LinkId)
        .filter(|&l| net.topology().link(l).dst == node)
        .collect()
}

fn links_from(net: &Network<()>, node: NodeId) -> Vec<LinkId> {
    (0..net.topology().link_count() as u32)
        .map(LinkId)
        .filter(|&l| net.topology().link(l).src == node)
        .collect()
}

fn run_until_idle(net: &mut Network<()>, max: u64) -> Result<(), SimError> {
    while net.is_busy() || net.next_event_cycle().is_some() {
        assert!(net.cycle() < max, "did not drain within {max} cycles");
        net.advance()?;
    }
    Ok(())
}

#[test]
fn repair_in_the_same_cycle_as_the_failure_is_a_pulse() {
    // Down and up scheduled for the same cycle: the schedule sorts the
    // down first, so the link blips — both counters tick, the routing
    // table ends where it started, and traffic flows.
    let mut net = mesh_net(200_000);
    let l = links_from(&net, NodeId(0))[0];
    net.set_fault_schedule(FaultSchedule::new(vec![
        FaultEvent {
            cycle: 3,
            link: l,
            up: false,
        },
        FaultEvent {
            cycle: 3,
            link: l,
            up: true,
        },
    ]));
    net.inject(Packet::new(
        Endpoint::at(NodeId(0)),
        Dest::unicast(Endpoint::at(NodeId(3))),
        5,
        (),
    ));
    run_until_idle(&mut net, 10_000).expect("pulse fault must not strand traffic");
    assert_eq!(net.stats().link_down_events, 1);
    assert_eq!(net.stats().link_up_events, 1);
    assert!(net.link_is_up(l));
    assert_eq!(net.stats().packets_delivered, 1);
    assert_eq!(net.invariant_checker().unwrap().total_violations(), 0);
}

#[test]
fn fully_disconnected_destination_trips_the_watchdog() {
    // Every link into the destination fails before the head can cross:
    // the packet is stranded forever and the watchdog must report it
    // (with the active faults in the error), not hang.
    let mut net = mesh_net(300);
    let dest = NodeId(3);
    let cut = links_into(&net, dest);
    assert!(cut.len() >= 2, "corner node has two incoming links");
    let events = cut
        .iter()
        .map(|&l| FaultEvent {
            cycle: 1,
            link: l,
            up: false,
        })
        .collect();
    net.set_fault_schedule(FaultSchedule::new(events));
    net.inject(Packet::new(
        Endpoint::at(NodeId(0)),
        Dest::unicast(Endpoint::at(dest)),
        5,
        (),
    ));
    let err = run_until_idle(&mut net, 100_000).expect_err("stranded traffic must be reported");
    match err {
        SimError::Watchdog {
            faults_active,
            blocked_heads,
            ..
        } => {
            assert_eq!(faults_active, cut.len() as u64);
            assert!(blocked_heads >= 1, "the head is waiting on routing");
        }
        other => panic!("expected a watchdog error, got: {other}"),
    }
}

#[test]
fn duplicate_fault_on_a_masked_link_is_a_no_op() {
    // A second down event for a link that is already down must not
    // double-count or rebuild anything; the eventual repair releases
    // the waiting packet.
    let mut net = mesh_net(200_000);
    let l = links_from(&net, NodeId(0))[0];
    net.set_fault_schedule(FaultSchedule::new(vec![
        FaultEvent {
            cycle: 1,
            link: l,
            up: false,
        },
        FaultEvent {
            cycle: 5,
            link: l,
            up: false, // duplicate: the link is already masked
        },
        FaultEvent {
            cycle: 60,
            link: l,
            up: true,
        },
    ]));
    // Route a packet across the failed link: XY from n0 can need either
    // outgoing link depending on destination, so send one packet to
    // each neighbour and let one of them block on `l`.
    for dest in [NodeId(1), NodeId(2)] {
        net.inject(Packet::new(
            Endpoint::at(NodeId(0)),
            Dest::unicast(Endpoint::at(dest)),
            3,
            (),
        ));
    }
    run_until_idle(&mut net, 10_000).expect("repaired fault must not strand traffic");
    assert_eq!(
        net.stats().link_down_events,
        1,
        "the duplicate down event must be skipped"
    );
    assert_eq!(net.stats().link_up_events, 1);
    assert_eq!(net.stats().packets_delivered, 2);
    assert_eq!(net.invariant_checker().unwrap().total_violations(), 0);
}
