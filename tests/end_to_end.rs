//! End-to-end shape tests: the paper's qualitative conclusions must
//! hold at test scale.

use nucanet::experiments::{run_cell, ExperimentScale};
use nucanet::{Design, Scheme};
use nucanet_suite::test_scale;
use nucanet_workload::{BenchmarkProfile, ALL_BENCHMARKS};

fn cell(
    design: Design,
    scheme: Scheme,
    bench: &str,
    scale: ExperimentScale,
) -> (nucanet::Metrics, f64) {
    let profile = BenchmarkProfile::by_name(bench).expect("benchmark exists");
    run_cell(design, scheme, &profile, scale)
}

#[test]
fn fast_lru_beats_lru_and_promotion() {
    // §6.1: Fast-LRU cuts average latency sharply in the unicast world.
    let scale = test_scale();
    for bench in ["gcc", "twolf", "parser"] {
        let (lru, _) = cell(Design::A, Scheme::UnicastLru, bench, scale);
        let (promo, _) = cell(Design::A, Scheme::UnicastPromotion, bench, scale);
        let (fast, _) = cell(Design::A, Scheme::UnicastFastLru, bench, scale);
        assert!(
            fast.avg_latency() < lru.avg_latency(),
            "{bench}: fastLRU {:.1} !< LRU {:.1}",
            fast.avg_latency(),
            lru.avg_latency()
        );
        assert!(
            fast.avg_latency() < promo.avg_latency(),
            "{bench}: fastLRU {:.1} !< promotion {:.1}",
            fast.avg_latency(),
            promo.avg_latency()
        );
    }
}

#[test]
fn multicast_fast_lru_is_overall_best() {
    let scale = test_scale();
    for bench in ["mcf", "vpr"] {
        let (best, best_ipc) = cell(Design::A, Scheme::MulticastFastLru, bench, scale);
        for other in [
            Scheme::UnicastPromotion,
            Scheme::UnicastLru,
            Scheme::MulticastPromotion,
        ] {
            let (m, ipc) = cell(Design::A, other, bench, scale);
            assert!(
                best.avg_latency() < m.avg_latency(),
                "{bench}: mc-fastLRU {:.1} !< {other} {:.1}",
                best.avg_latency(),
                m.avg_latency()
            );
            assert!(best_ipc > ipc, "{bench}: IPC ordering vs {other}");
        }
    }
}

#[test]
fn multicast_cuts_miss_latency() {
    // Multicast detects a miss in parallel; unicast walks all 16 banks.
    let scale = test_scale();
    let (uni, _) = cell(Design::A, Scheme::UnicastFastLru, "applu", scale);
    let (multi, _) = cell(Design::A, Scheme::MulticastFastLru, "applu", scale);
    assert!(
        multi.avg_miss_latency() < uni.avg_miss_latency(),
        "multicast miss {:.1} !< unicast miss {:.1}",
        multi.avg_miss_latency(),
        uni.avg_miss_latency()
    );
}

#[test]
fn halo_beats_mesh_and_f_is_best() {
    let scale = test_scale();
    for bench in ["gcc", "twolf"] {
        let (a, a_ipc) = cell(Design::A, Scheme::MulticastFastLru, bench, scale);
        let (e, e_ipc) = cell(Design::E, Scheme::MulticastFastLru, bench, scale);
        let (f, f_ipc) = cell(Design::F, Scheme::MulticastFastLru, bench, scale);
        assert!(
            e.avg_latency() < a.avg_latency(),
            "{bench}: E {:.1} !< A {:.1}",
            e.avg_latency(),
            a.avg_latency()
        );
        assert!(
            f.avg_latency() < e.avg_latency(),
            "{bench}: F {:.1} !< E {:.1}",
            f.avg_latency(),
            e.avg_latency()
        );
        assert!(
            f_ipc > e_ipc && e_ipc > a_ipc,
            "{bench}: IPC ordering A<{a_ipc:.3} E<{e_ipc:.3} F<{f_ipc:.3}"
        );
    }
}

#[test]
fn headline_f_fastlru_vs_a_promotion() {
    // Abstract: "improves the average IPC by 38% over the mesh network
    // design with Multicast Promotion". Require a solid double-digit win.
    let scale = test_scale();
    let mut gains = Vec::new();
    for bench in ["gcc", "twolf", "mcf"] {
        let (_, best) = cell(Design::F, Scheme::MulticastFastLru, bench, scale);
        let (_, base) = cell(Design::A, Scheme::MulticastPromotion, bench, scale);
        gains.push(best / base);
    }
    let avg = gains.iter().product::<f64>().powf(1.0 / gains.len() as f64);
    assert!(avg > 1.15, "headline gain only {avg:.2}x (gains {gains:?})");
}

#[test]
fn simplified_mesh_tracks_full_mesh() {
    // §6.2: "Design B achieves almost the same performance as Design A
    // despite the decreased bandwidth."
    let scale = test_scale();
    let (a, _) = cell(Design::A, Scheme::MulticastFastLru, "bzip2", scale);
    let (b, _) = cell(Design::B, Scheme::MulticastFastLru, "bzip2", scale);
    let ratio = b.avg_latency() / a.avg_latency();
    assert!((0.85..1.15).contains(&ratio), "B/A latency ratio {ratio}");
}

#[test]
fn network_dominates_latency_split() {
    // Fig. 7's headline: the network share is the largest.
    let scale = test_scale();
    let (m, _) = cell(Design::A, Scheme::UnicastLru, "galgel", scale);
    let (bank, net, mem) = m.latency_breakdown();
    assert!(
        net > bank && net > mem,
        "split bank {bank:.2} net {net:.2} mem {mem:.2}"
    );
}

#[test]
fn lru_concentrates_hits_at_mru() {
    // §6.1: LRU raises MRU-bank hits over promotion by 5–19%.
    let scale = test_scale();
    let (lru, _) = cell(Design::A, Scheme::UnicastLru, "vpr", scale);
    let (promo, _) = cell(Design::A, Scheme::UnicastPromotion, "vpr", scale);
    assert!(
        lru.mru_concentration() > promo.mru_concentration(),
        "LRU {:.3} !> promotion {:.3}",
        lru.mru_concentration(),
        promo.mru_concentration()
    );
}

#[test]
fn art_is_nearly_miss_free_and_streamers_are_not() {
    let scale = ExperimentScale {
        warmup: 20_000,
        measured: 600,
        active_sets: 64,
        seed: 5,
    };
    let (art, _) = cell(Design::A, Scheme::MulticastFastLru, "art", scale);
    let (applu, _) = cell(Design::A, Scheme::MulticastFastLru, "applu", scale);
    assert!(art.hit_rate() > 0.93, "art hit rate {:.3}", art.hit_rate());
    assert!(
        applu.hit_rate() < 0.55,
        "applu hit rate {:.3}",
        applu.hit_rate()
    );
}

#[test]
fn every_benchmark_runs_on_every_design() {
    // Smoke: the full Fig. 9 grid completes at miniature scale.
    let scale = ExperimentScale {
        warmup: 1_000,
        measured: 60,
        active_sets: 32,
        seed: 2,
    };
    for b in &ALL_BENCHMARKS {
        for d in nucanet::config::ALL_DESIGNS {
            let (m, ipc) = run_cell(d, Scheme::MulticastFastLru, b, scale);
            assert_eq!(m.accesses(), scale.measured, "{d:?}/{}", b.name);
            assert!(ipc > 0.0 && ipc <= b.perfect_l2_ipc, "{d:?}/{}", b.name);
        }
    }
}

#[test]
fn pipelined_router_ablation_hurts() {
    // The single-cycle router is the point of §3.1.
    let profile = BenchmarkProfile::by_name("gcc").expect("gcc exists");
    let scale = test_scale();
    let run_stages = |stages: u32| {
        let mut cfg = Design::A.config(Scheme::MulticastFastLru);
        cfg.router = nucanet_noc::RouterParams::pipelined(stages);
        let mut gen = nucanet_workload::TraceGenerator::new(
            profile,
            nucanet_workload::SynthConfig {
                active_sets: scale.active_sets,
                seed: scale.seed,
                ..Default::default()
            },
        );
        let trace = gen.generate(scale.warmup, scale.measured);
        nucanet::CacheSystem::new(&cfg).run(&trace).expect("no faults injected").avg_latency()
    };
    let single = run_stages(1);
    let four = run_stages(4);
    assert!(
        four > single * 1.3,
        "4-stage {four:.1} vs single-cycle {single:.1}"
    );
}
