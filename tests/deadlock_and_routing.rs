//! Deadlock-freedom and routing properties across topologies.
//!
//! * The channel dependency graph of every (topology, routing) pair the
//!   system uses is acyclic, for arbitrary mesh sizes (Dally–Seitz).
//! * XYX admits a total channel enumeration and every routed path
//!   follows strictly increasing channel numbers (the paper's Fig. 5).
//! * Random traffic — unicast and path multicast — always drains
//!   (empirical liveness; the network watchdog would panic otherwise).

use nucanet_noc::deadlock::path_is_increasing;
use nucanet_noc::{
    ChannelDependencyGraph, Dest, Endpoint, Network, NodeId, Packet, RouterParams, RoutingSpec,
    Topology,
};
use proptest::prelude::*;

fn unit(n: u16) -> Vec<u32> {
    vec![1; n as usize]
}

fn drain<P>(net: &mut Network<P>, max_steps: u64) {
    let mut steps = 0;
    while net.is_busy() || net.next_event_cycle().is_some() {
        net.advance().expect("no faults injected");
        steps += 1;
        assert!(
            steps < max_steps,
            "network failed to drain within {max_steps} steps"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn xyx_deadlock_free_on_any_simplified_mesh(cols in 2u16..9, rows in 2u16..9) {
        let t = Topology::simplified_mesh(cols, rows, &unit(cols - 1), &unit(rows - 1));
        let rt = RoutingSpec::Xyx.build(&t).unwrap();
        let cdg = ChannelDependencyGraph::from_all_pairs(&t, &rt);
        prop_assert!(cdg.analyze().acyclic);
        let order = cdg.enumeration().expect("XYX admits a channel enumeration");
        for a in 0..t.len() as u32 {
            for b in 0..t.len() as u32 {
                if let Some(path) = rt.path(&t, NodeId(a), NodeId(b)) {
                    prop_assert!(path_is_increasing(&order, &path));
                }
            }
        }
    }

    #[test]
    fn xy_deadlock_free_on_any_mesh(cols in 2u16..9, rows in 2u16..9) {
        let t = Topology::mesh(cols, rows, &unit(cols - 1), &unit(rows - 1));
        let rt = RoutingSpec::Xy.build(&t).unwrap();
        prop_assert!(ChannelDependencyGraph::from_all_pairs(&t, &rt).analyze().acyclic);
    }

    #[test]
    fn random_unicast_traffic_drains(
        seed in 0u64..1_000,
        n_packets in 1usize..120,
    ) {
        let t = Topology::mesh(5, 5, &unit(4), &unit(4));
        let rt = RoutingSpec::Xy.build(&t).unwrap();
        let mut net: Network<u32> = Network::new(t, rt, RouterParams::default());
        let mut x = seed.wrapping_add(1);
        let mut injected = 0;
        for i in 0..n_packets {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = (x >> 13) as u32 % 25;
            let b = (x >> 37) as u32 % 25;
            if a == b {
                continue;
            }
            let flits = if x % 2 == 0 { 1 } else { 5 };
            net.inject(Packet::new(
                Endpoint::at(NodeId(a)),
                Dest::unicast(Endpoint::at(NodeId(b))),
                flits,
                i as u32,
            ));
            injected += 1;
        }
        drain(&mut net, 100_000);
        prop_assert_eq!(net.stats().packets_delivered, injected);
    }

    #[test]
    fn random_column_multicasts_drain(seed in 0u64..1_000, bursts in 1usize..12) {
        // Concurrent column multicasts stress the replica-VC mechanism.
        let t = Topology::mesh(4, 8, &unit(3), &unit(7));
        let rt = RoutingSpec::Xy.build(&t).unwrap();
        let mut net: Network<u32> = Network::new(t, rt, RouterParams::default());
        let src = Endpoint::at(net.topology().node_at(1, 0));
        let mut x = seed.wrapping_add(7);
        let mut expected = 0u64;
        for _ in 0..bursts {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let col = (x >> 17) as u16 % 4;
            let path: Vec<Endpoint> =
                (0..8).map(|r| Endpoint::at(net.topology().node_at(col, r))).collect();
            let flits = if x % 3 == 0 { 5 } else { 1 };
            net.inject(Packet::new(src, Dest::multicast(path), flits, 0));
            expected += 8;
        }
        drain(&mut net, 200_000);
        prop_assert_eq!(net.stats().packets_delivered, expected);
    }

    #[test]
    fn halo_traffic_drains(seed in 0u64..1_000) {
        let t = Topology::halo(8, 5, &[1, 1, 2, 2, 3], 3);
        let rt = RoutingSpec::ShortestPath.build(&t).unwrap();
        let mut net: Network<u32> = Network::new(t, rt, RouterParams::default());
        let hub = Endpoint { node: NodeId(0), slot: 0 };
        let mut x = seed.wrapping_add(13);
        let mut expected = 0u64;
        for _ in 0..10 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let s = (x >> 11) as u16 % 8;
            let path: Vec<Endpoint> =
                (0..5).map(|p| Endpoint::at(net.topology().spike_node(s, p))).collect();
            net.inject(Packet::new(hub, Dest::multicast(path), 1, 0));
            expected += 5;
            // And a reply coming back up.
            let bank = Endpoint::at(net.topology().spike_node(s, ((x >> 29) % 5) as u16));
            net.inject(Packet::new(bank, Dest::unicast(hub), 5, 1));
            expected += 1;
        }
        drain(&mut net, 200_000);
        prop_assert_eq!(net.stats().packets_delivered, expected);
    }
}

#[test]
fn xyx_enumeration_on_paper_sized_mesh() {
    // The full 16x16 simplified mesh of Design B.
    let t = Topology::simplified_mesh(16, 16, &unit(15), &unit(15));
    let rt = RoutingSpec::Xyx.build(&t).unwrap();
    let cdg = ChannelDependencyGraph::from_all_pairs(&t, &rt);
    let report = cdg.analyze();
    assert!(report.acyclic, "cycle witness: {:?}", report.cycle);
    assert!(cdg.enumeration().is_some());
}

#[test]
fn link_fault_analysis_shows_topology_resilience() {
    let unit = |n: u16| vec![1u32; n as usize];
    // Cut one vertical link in a full mesh.
    let t = Topology::mesh(4, 4, &unit(3), &unit(3));
    let victim = t
        .links()
        .iter()
        .position(|l| {
            let a = t.coord_of(l.src).unwrap();
            let b = t.coord_of(l.dst).unwrap();
            a.col == 1 && a.row == 1 && b.col == 1 && b.row == 2
        })
        .expect("vertical link exists") as u32;
    let cut = t.without_links(&[nucanet_noc::LinkId(victim)]);

    // Deterministic XY cannot route around the fault…
    let xy = RoutingSpec::Xy.build(&cut).unwrap();
    let broken = (0..16u32)
        .flat_map(|a| (0..16u32).map(move |b| (a, b)))
        .filter(|&(a, b)| !xy.is_routable(NodeId(a), NodeId(b)))
        .count();
    assert!(broken > 0, "XY must lose some routes to the fault");

    // …while shortest-path re-routing keeps every pair connected.
    let sp = RoutingSpec::ShortestPath.build(&cut).unwrap();
    for a in 0..16u32 {
        for b in 0..16u32 {
            assert!(sp.is_routable(NodeId(a), NodeId(b)), "{a}->{b}");
        }
    }
}

#[test]
fn halo_spikes_are_single_points_of_failure() {
    // Cutting the first hop of a spike strands everything below it —
    // the price of the halo's minimal link count.
    let t = Topology::halo(4, 4, &[1; 4], 1);
    let first_hop = t
        .links()
        .iter()
        .position(|l| l.src == NodeId(0) && l.dst == t.spike_node(2, 0))
        .expect("hub link exists") as u32;
    let cut = t.without_links(&[nucanet_noc::LinkId(first_hop)]);
    let sp = RoutingSpec::ShortestPath.build(&cut).unwrap();
    for p in 0..4 {
        assert!(
            !sp.is_routable(NodeId(0), cut.spike_node(2, p)),
            "spike 2 position {p} should be stranded"
        );
    }
    // Other spikes are untouched.
    assert!(sp.is_routable(NodeId(0), cut.spike_node(1, 3)));
}

#[test]
fn design_d_non_uniform_mesh_is_deadlock_free() {
    // Mixed link delays must not affect the CDG argument.
    let t = Topology::simplified_mesh(16, 5, &[3; 15], &[1, 2, 2, 3]);
    let rt = RoutingSpec::Xyx.build(&t).unwrap();
    assert!(
        ChannelDependencyGraph::from_all_pairs(&t, &rt)
            .analyze()
            .acyclic
    );
}
