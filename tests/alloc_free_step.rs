//! Proves the cycle kernel is allocation-free in steady state.
//!
//! A counting global allocator wraps the system allocator; after a
//! warm-up phase grows every buffer (VC queues, wheel buckets, scratch
//! vectors, the pending/work ping-pong pair) to its high-water mark,
//! stepping the network to idle must not allocate at all. This test
//! lives in its own integration-test binary because the
//! `#[global_allocator]` is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use nucanet_noc::packet::flits_for_bytes;
use nucanet_noc::{Dest, Endpoint, Network, NodeId, Packet, RouterParams, RoutingSpec, Topology};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 16
}

/// One burst of mixed unicast/multicast traffic shaped like the Fig. 7
/// runs: requests, block transfers, and column multicasts on the
/// 16×16 mesh. The packets are pre-built outside the measured window;
/// only `inject` + `step` run while counting.
fn burst(net: &mut Network<u32>, seed: &mut u64) -> Vec<Packet<u32>> {
    let n = 256u64;
    let mut out = Vec::new();
    for _ in 0..48 {
        let a = lcg(seed) % n;
        let mut b = lcg(seed) % n;
        if a == b {
            b = (b + 1) % n;
        }
        let flits = if lcg(seed).is_multiple_of(2) {
            1
        } else {
            flits_for_bytes(64)
        };
        out.push(Packet::new(
            Endpoint::at(NodeId(a as u32)),
            Dest::unicast(Endpoint::at(NodeId(b as u32))),
            flits,
            a as u32,
        ));
    }
    // A few column multicasts exercise the replication path.
    for _ in 0..4 {
        let col = (lcg(seed) % 16) as u16;
        let src = NodeId((lcg(seed) % 256) as u32);
        let path: Vec<Endpoint> = (0..16)
            .map(|row| Endpoint::at(net.topology().node_at(col, row)))
            .filter(|e| e.node != src)
            .collect();
        out.push(Packet::new(
            Endpoint::at(src),
            Dest::multicast(path),
            1,
            0,
        ));
    }
    out
}

fn run_burst(net: &mut Network<u32>, packets: Vec<Packet<u32>>) {
    for p in packets {
        net.inject(p);
    }
    while net.is_busy() || net.next_event_cycle().is_some() {
        net.advance().expect("traffic cannot deadlock");
    }
    net.drain_all_delivered();
}

#[test]
fn steady_state_step_does_not_allocate() {
    let topo = Topology::mesh(16, 16, &[1; 15], &[1; 15]);
    let table = RoutingSpec::Xy.build(&topo).expect("mesh routes");
    let mut net: Network<u32> = Network::new(topo, table, RouterParams::hpca07());
    let mut seed = 0x9E3779B97F4A7C15u64;

    // Warm-up: grow every internal buffer to its high-water mark.
    for _ in 0..12 {
        let packets = burst(&mut net, &mut seed);
        run_burst(&mut net, packets);
    }

    // Measured window. Packet construction allocates (Rc bodies,
    // multicast lists), so pre-build the burst before snapshotting the
    // counter; `inject` itself allocates the per-packet `Rc` and is
    // excluded too by injecting before the snapshot.
    let packets = burst(&mut net, &mut seed);
    for p in packets {
        net.inject(p);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    while net.is_busy() || net.next_event_cycle().is_some() {
        net.advance().expect("traffic cannot deadlock");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    net.drain_all_delivered();

    assert_eq!(
        after - before,
        0,
        "Network::step allocated {} times in steady state",
        after - before
    );
}
