//! Differential harness: the fast wormhole simulator against the
//! store-and-forward golden model, over seeded random scenarios.
//!
//! These are the tier-1 entry points for the fuzzing machinery in
//! `nucanet_noc::fuzz` (the `nucanet fuzz` subcommand runs the same
//! campaigns from the command line, and CI runs a larger nightly one).
//! Every iteration checks three properties:
//!
//! 1. the fast simulator is deterministic (two runs, bit-identical
//!    delivery sequences),
//! 2. fast and golden deliver the same `(packet, endpoint)` multiset,
//! 3. with the runtime invariant checker enabled, no per-cycle
//!    invariant (flit conservation, credit accounting, flit order,
//!    exactly-once multicast, channel enumeration) is violated.

use nucanet_noc::{run_fuzz, FuzzOptions};

#[test]
fn two_hundred_seeded_scenarios_match_the_golden_model() {
    let report = run_fuzz(&FuzzOptions {
        iters: 200,
        seed: 0xD1FF,
        check: true,
        max_cycles: 50_000,
        sim_threads: 1,
        warm_iters: 50,
    });
    assert!(
        report.failure.is_none(),
        "differential fuzz failed: {:?}",
        report.failure
    );
    assert_eq!(report.iters_run, 200);
    // The campaign must actually exercise the interesting machinery:
    // multicast replication, fault rebuilds, and plenty of traffic.
    assert!(report.packets >= 200 * 5, "{report:?}");
    assert!(report.deliveries >= report.packets, "{report:?}");
    assert!(report.multicasts > 50, "{report:?}");
    assert!(report.fault_events > 50, "{report:?}");
}

#[test]
fn campaigns_are_reproducible() {
    let opts = FuzzOptions {
        iters: 20,
        seed: 42,
        check: false,
        max_cycles: 50_000,
        sim_threads: 1,
        warm_iters: 20,
    };
    let a = run_fuzz(&opts);
    let b = run_fuzz(&opts);
    assert!(a.failure.is_none() && b.failure.is_none());
    assert_eq!(a.packets, b.packets);
    assert_eq!(a.deliveries, b.deliveries);
    assert_eq!(a.multicasts, b.multicasts);
    assert_eq!(a.fault_events, b.fault_events);
}
