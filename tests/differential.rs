//! Differential harness: the fast wormhole simulator against the
//! store-and-forward golden model, over seeded random scenarios.
//!
//! These are the tier-1 entry points for the fuzzing machinery in
//! `nucanet_noc::fuzz` (the `nucanet fuzz` subcommand runs the same
//! campaigns from the command line, and CI runs a larger nightly one).
//! Every iteration checks three properties:
//!
//! 1. the fast simulator is deterministic (two runs, bit-identical
//!    delivery sequences),
//! 2. fast and golden deliver the same `(packet, endpoint)` multiset,
//! 3. with the runtime invariant checker enabled, no per-cycle
//!    invariant (flit conservation, credit accounting, flit order,
//!    exactly-once multicast, channel enumeration, replication budget)
//!    is violated.
//!
//! With `strategy: None` every scenario also samples its multicast
//! replication strategy (hybrid, tree, or path) from a decorrelated
//! seed stream, so one campaign covers all three replication kernels;
//! the cross-strategy campaign additionally runs each scenario under
//! every strategy and demands identical delivered multisets.

use nucanet_noc::{run_fuzz, FuzzOptions};

#[test]
fn two_hundred_seeded_scenarios_match_the_golden_model() {
    let report = run_fuzz(&FuzzOptions {
        iters: 200,
        seed: 0xD1FF,
        check: true,
        max_cycles: 50_000,
        sim_threads: 1,
        warm_iters: 50,
        strategy: None,
        cross_strategy: false,
    });
    assert!(
        report.failure.is_none(),
        "differential fuzz failed: {:?}",
        report.failure
    );
    assert_eq!(report.iters_run, 200);
    // The campaign must actually exercise the interesting machinery:
    // multicast replication, fault rebuilds, and plenty of traffic.
    assert!(report.packets >= 200 * 5, "{report:?}");
    assert!(report.deliveries >= report.packets, "{report:?}");
    assert!(report.multicasts > 50, "{report:?}");
    assert!(report.fault_events > 50, "{report:?}");
    // Strategy sampling must spread the campaign over all three
    // replication kernels rather than collapsing onto one.
    for (runs, name) in report.strategy_runs.iter().zip(["hybrid", "tree", "path"]) {
        assert!(*runs > 20, "{name} undersampled: {report:?}");
    }
}

#[test]
fn cross_strategy_scenarios_deliver_identical_multisets() {
    let report = run_fuzz(&FuzzOptions {
        iters: 100,
        seed: 0xC405,
        check: true,
        max_cycles: 50_000,
        sim_threads: 1,
        warm_iters: 0,
        strategy: None,
        cross_strategy: true,
    });
    assert!(
        report.failure.is_none(),
        "cross-strategy fuzz failed: {:?}",
        report.failure
    );
    assert_eq!(report.iters_run, 100);
    assert_eq!(report.strategy_runs, [100, 100, 100], "{report:?}");
    assert!(report.multicasts > 25, "{report:?}");
}

#[test]
fn campaigns_are_reproducible() {
    let opts = FuzzOptions {
        iters: 20,
        seed: 42,
        check: false,
        max_cycles: 50_000,
        sim_threads: 1,
        warm_iters: 20,
        strategy: None,
        cross_strategy: false,
    };
    let a = run_fuzz(&opts);
    let b = run_fuzz(&opts);
    assert!(a.failure.is_none() && b.failure.is_none());
    assert_eq!(a.packets, b.packets);
    assert_eq!(a.deliveries, b.deliveries);
    assert_eq!(a.multicasts, b.multicasts);
    assert_eq!(a.fault_events, b.fault_events);
    assert_eq!(a.strategy_runs, b.strategy_runs);
}
