//! The central correctness property of the reproduction: the timed,
//! distributed replacement protocols (unicast/multicast ×
//! promotion/LRU/fast-LRU), executed flit-by-flit over the on-chip
//! network, must leave every bank set in **exactly** the state the
//! functional position-stack model predicts, and must report the same
//! hits at the same stack positions.

use nucanet::scheme::ALL_SCHEMES;
use nucanet::{CacheSystem, Design, Scheme};
use nucanet_cache::{AccessResult, AddressMap, BankSetModel, Block, BlockAddr};
use nucanet_workload::L2Access;
use proptest::prelude::*;

fn addr(map: AddressMap, column: u32, index: u32, tag: u32) -> u32 {
    map.compose(BlockAddr { column, index, tag })
}

/// Replays `seq` on both the timed system and the functional model;
/// asserts identical hit outcomes (as multisets per set) and identical
/// final contents.
fn check_equivalence(design: Design, scheme: Scheme, seq: &[(u32, u32, u32, bool)]) {
    let cfg = design.config(scheme);
    let mut sys = CacheSystem::new(&cfg);
    let map = sys.map();
    let positions = cfg.bank_kb.len();

    let segments: Vec<usize> = cfg.bank_ways.iter().map(|&w| w as usize).collect();
    let mut models: Vec<BankSetModel> = (0..cfg.columns)
        .map(|_| {
            BankSetModel::with_segments(segments.clone(), map.sets() as usize, scheme.policy())
        })
        .collect();

    let accesses: Vec<L2Access> = seq
        .iter()
        .map(|&(c, i, t, w)| L2Access {
            addr: addr(map, c, i, t),
            write: w,
        })
        .collect();
    let metrics = sys.run_timed(&accesses).expect("no faults injected");
    assert_eq!(metrics.accesses(), seq.len());
    assert_eq!(metrics.positions, positions);

    let mut want_hits = 0usize;
    for &(c, i, t, w) in seq {
        if let AccessResult::Hit { .. } = models[c as usize].access(i as usize, t, w) {
            want_hits += 1;
        }
    }
    let got_hits = metrics
        .records
        .iter()
        .filter(|r| r.hit_position.is_some())
        .count();
    assert_eq!(got_hits, want_hits, "{design:?}/{scheme}: hit count");

    // Final contents, including dirty bits, per touched set.
    let mut touched: Vec<(u32, u32)> = seq.iter().map(|&(c, i, _, _)| (c, i)).collect();
    touched.sort_unstable();
    touched.dedup();
    for (c, i) in touched {
        let got: Vec<Block> = sys.column_stack(c as u16, i);
        let want: Vec<Block> = models[c as usize]
            .stack_of(i as usize)
            .iter()
            .flatten()
            .copied()
            .collect();
        assert_eq!(got, want, "{design:?}/{scheme}: column {c} index {i}");
    }
}

#[test]
fn deterministic_burst_all_schemes_design_a() {
    // 3 columns x 2 indexes x 20 tags, heavy reuse, mixed writes.
    let mut seq = Vec::new();
    let mut x: u64 = 99;
    for _ in 0..220 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seq.push((
            ((x >> 11) % 3) as u32,
            ((x >> 23) % 2) as u32,
            ((x >> 33) % 20) as u32,
            x.is_multiple_of(4),
        ));
    }
    for scheme in ALL_SCHEMES {
        check_equivalence(Design::A, scheme, &seq);
    }
}

#[test]
fn deterministic_burst_non_uniform_designs() {
    // Multi-way banks (Designs D and F) exercise intra-bank ordering.
    let mut seq = Vec::new();
    let mut x: u64 = 3;
    for _ in 0..180 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seq.push((
            ((x >> 9) % 4) as u32,
            ((x >> 21) % 2) as u32,
            ((x >> 31) % 24) as u32,
            x.is_multiple_of(5),
        ));
    }
    for design in [Design::D, Design::F] {
        for scheme in [
            Scheme::UnicastFastLru,
            Scheme::MulticastFastLru,
            Scheme::MulticastPromotion,
        ] {
            check_equivalence(design, scheme, &seq);
        }
    }
}

#[test]
fn single_set_fill_and_thrash() {
    // Fill one 16-way set beyond capacity and re-access in LRU order:
    // every access must miss (the classic LRU thrash), and under
    // promotion some must hit.
    let seq: Vec<(u32, u32, u32, bool)> = (0..40).map(|k| (0, 0, k % 20, false)).collect();
    for scheme in ALL_SCHEMES {
        check_equivalence(Design::A, scheme, &seq);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random short bursts agree with the functional model for every
    /// scheme on the mesh and for Fast-LRU on the halo.
    #[test]
    fn random_bursts_match_model(
        seq in proptest::collection::vec(
            (0u32..4, 0u32..2, 0u32..24, proptest::bool::ANY),
            1..120,
        ),
        scheme_idx in 0usize..5,
        on_halo in proptest::bool::ANY,
    ) {
        let scheme = ALL_SCHEMES[scheme_idx];
        let design = if on_halo { Design::F } else { Design::A };
        check_equivalence(design, scheme, &seq);
    }
}
