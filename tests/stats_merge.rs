//! Property tests for the merge algebra of [`NetStats`] and
//! [`Metrics`].
//!
//! The parallel sweep engine depends on these laws: workers record
//! disjoint windows and the collector folds them together in whatever
//! order threads finish, so the fold must be associative (and, for the
//! streaming aggregates, commutative) or worker count would change the
//! reported numbers. The laws are asserted on *full structural
//! equality*, not just on a few summary statistics.

use nucanet::metrics::{AccessRecord, Metrics, MetricsCapture, FINE_LATENCY_BUCKETS};
use nucanet_noc::NetStats;
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = AccessRecord> {
    (
        proptest::bool::ANY,
        proptest::option::of(0u8..16),
        // Latencies straddle the fine/overflow histogram boundary so the
        // merge of the exact-overflow map is exercised too.
        0u64..(2 * FINE_LATENCY_BUCKETS as u64),
        0u64..5_000,
        0u64..60,
        0u64..400,
    )
        .prop_map(
            |(write, hit_position, latency, data_latency, bank_cycles, mem_cycles)| AccessRecord {
                write,
                hit_position,
                latency,
                data_latency,
                bank_cycles,
                mem_cycles,
            },
        )
}

fn arb_netstats() -> impl Strategy<Value = NetStats> {
    (
        (
            0u64..10_000,
            0u64..500,
            0u64..500,
            proptest::collection::vec(0u64..100, 0..8),
            0u64..1_000,
        ),
        (
            0u64..10_000,
            0u64..50,
            0u64..200,
            proptest::collection::vec(0u64..50, 0..16),
            0u64..256,
        ),
        (0u64..10, 0u64..10, 0u64..50, 0u64..500),
    )
        .prop_map(
            |(
                (cycles, packets_injected, packets_delivered, flits_per_link, flits_ejected),
                (
                    total_packet_latency,
                    replications,
                    replication_blocked_cycles,
                    latency_buckets,
                    peak_vc_occupancy,
                ),
                (link_down_events, link_up_events, packets_rerouted, route_blocked_cycles),
            )| NetStats {
                cycles,
                packets_injected,
                packets_delivered,
                flits_per_link,
                flits_ejected,
                total_packet_latency,
                replications,
                replication_blocked_cycles,
                latency_buckets,
                peak_vc_occupancy: peak_vc_occupancy as u8,
                link_down_events,
                link_up_events,
                packets_rerouted,
                route_blocked_cycles,
            },
        )
}

/// Builds a metrics window from a record stream, with a couple of
/// counter fields that only merge (never record) can populate.
fn window(capture: MetricsCapture, records: &[AccessRecord], salt: u64) -> Metrics {
    let mut m = Metrics::new(capture, 16);
    m.cycles = 1_000 + salt;
    m.mem_ops = salt;
    m.timed_out_accesses = salt % 3;
    m.retried_accesses = salt % 5;
    m.bank_ops_by_kb = vec![(64, salt + 1), (64 + 64 * (salt as u32 % 3), 7)];
    m.bank_ops_by_kb.sort_unstable_by_key(|&(kb, _)| kb);
    m.bank_ops_by_kb.dedup_by(|a, b| {
        if a.0 == b.0 {
            b.1 += a.1;
            true
        } else {
            false
        }
    });
    for &r in records {
        m.record(r);
    }
    m
}

fn merged(a: &Metrics, b: &Metrics) -> Metrics {
    let mut m = a.clone();
    m.merge(b);
    m
}

fn merged_stats(a: &NetStats, b: &NetStats) -> NetStats {
    let mut s = a.clone();
    s.merge(b);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn netstats_merge_is_commutative(a in arb_netstats(), b in arb_netstats()) {
        prop_assert_eq!(merged_stats(&a, &b), merged_stats(&b, &a));
    }

    fn netstats_merge_is_associative(
        a in arb_netstats(),
        b in arb_netstats(),
        c in arb_netstats(),
    ) {
        prop_assert_eq!(
            merged_stats(&merged_stats(&a, &b), &c),
            merged_stats(&a, &merged_stats(&b, &c))
        );
    }

    fn netstats_default_is_a_merge_identity(a in arb_netstats()) {
        prop_assert_eq!(merged_stats(&a, &NetStats::default()), a.clone());
        prop_assert_eq!(merged_stats(&NetStats::default(), &a), a);
    }

    fn metrics_merge_is_associative_under_full_capture(
        ra in proptest::collection::vec(arb_record(), 0..30),
        rb in proptest::collection::vec(arb_record(), 0..30),
        rc in proptest::collection::vec(arb_record(), 0..30),
    ) {
        let (a, b, c) = (
            window(MetricsCapture::Full, &ra, 1),
            window(MetricsCapture::Full, &rb, 2),
            window(MetricsCapture::Full, &rc, 3),
        );
        // Record concatenation is associative, so the law holds even
        // with the full record lists included in the comparison.
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    fn metrics_merge_is_commutative_under_streaming(
        ra in proptest::collection::vec(arb_record(), 0..30),
        rb in proptest::collection::vec(arb_record(), 0..30),
    ) {
        // Streaming keeps no record list, so the only order-sensitive
        // field is gone and the merge is fully commutative.
        let a = window(MetricsCapture::Streaming, &ra, 1);
        let b = window(MetricsCapture::Streaming, &rb, 2);
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    fn metrics_merge_matches_sequential_recording(
        records in proptest::collection::vec(arb_record(), 1..60),
        cut in 0usize..1_000_000,
    ) {
        // Splitting a stream into two windows and merging must equal
        // recording the whole stream into one Metrics.
        let k = cut % (records.len() + 1);
        let combined = merged(
            &window(MetricsCapture::Full, &records[..k], 0),
            &window(MetricsCapture::Full, &records[k..], 0),
        );
        let mut sequential = window(MetricsCapture::Full, &records, 0);
        // `window` fills the non-record counters per window, so the
        // sequential reference carries one window's worth of bank ops
        // where the merge summed two; align it.
        sequential.bank_ops_by_kb.iter_mut().for_each(|(_, n)| *n *= 2);
        prop_assert_eq!(combined.records.as_slice(), records.as_slice());
        prop_assert_eq!(combined, sequential);
    }

    fn metrics_summaries_are_merge_order_independent(
        ra in proptest::collection::vec(arb_record(), 1..30),
        rb in proptest::collection::vec(arb_record(), 1..30),
    ) {
        // Even under Full capture (where the record lists differ by
        // order), every derived summary statistic is order-independent.
        let a = window(MetricsCapture::Full, &ra, 1);
        let b = window(MetricsCapture::Full, &rb, 2);
        let (ab, ba) = (merged(&a, &b), merged(&b, &a));
        prop_assert_eq!(ab.accesses(), ba.accesses());
        prop_assert_eq!(ab.avg_latency(), ba.avg_latency());
        prop_assert_eq!(ab.avg_hit_latency(), ba.avg_hit_latency());
        prop_assert_eq!(ab.avg_miss_latency(), ba.avg_miss_latency());
        prop_assert_eq!(ab.latency_breakdown(), ba.latency_breakdown());
        prop_assert_eq!(ab.hits_by_position(), ba.hits_by_position());
        prop_assert_eq!(ab.latency_percentile(0.95), ba.latency_percentile(0.95));
    }
}
