//! Integration tests for the §7 future-work extensions: CMP sharing,
//! energy accounting, power gating, and the S-NUCA-2 baseline.

use nucanet::energy::{energy_of_run, gating_estimate};
use nucanet::experiments::{run_cell, ExperimentScale};
use nucanet::{CacheSystem, Design, Scheme};
use nucanet_suite::test_scale;
use nucanet_workload::{BenchmarkProfile, SynthConfig, Trace, TraceGenerator};

fn trace_for(name: &str, seed: u64, warm: usize, measured: usize) -> Trace {
    let profile = BenchmarkProfile::by_name(name).expect("benchmark exists");
    let mut gen = TraceGenerator::new(
        profile,
        SynthConfig {
            active_sets: 64,
            seed,
            ..Default::default()
        },
    );
    gen.generate(warm, measured)
}

#[test]
fn cmp_two_cores_complete_mixed_workloads() {
    for design in [Design::A, Design::F] {
        let cfg = design.config(Scheme::MulticastFastLru);
        let mut sys = CacheSystem::with_cores(&cfg, 2);
        let t0 = trace_for("gcc", 1, 3_000, 250);
        let t1 = trace_for("twolf", 2, 3_000, 250);
        let ms = sys.run_cmp(&[t0, t1]).expect("no faults injected");
        assert_eq!(ms.len(), 2, "{design:?}");
        assert_eq!(ms[0].accesses(), 250, "{design:?}");
        assert_eq!(ms[1].accesses(), 250, "{design:?}");
        for m in &ms {
            assert!(
                m.hit_rate() > 0.3,
                "{design:?}: hit rate {:.3}",
                m.hit_rate()
            );
            assert!(m.avg_latency() > 0.0, "{design:?}");
        }
    }
}

#[test]
fn cmp_four_cores_on_the_halo() {
    let cfg = Design::F.config(Scheme::MulticastFastLru);
    let mut sys = CacheSystem::with_cores(&cfg, 4);
    assert_eq!(sys.core_count(), 4);
    let traces: Vec<Trace> = (0..4)
        .map(|i| trace_for(["gcc", "vpr", "mcf", "mesa"][i], 10 + i as u64, 2_000, 150))
        .collect();
    let ms = sys.run_cmp(&traces).expect("no faults injected");
    assert!(ms.iter().all(|m| m.accesses() == 150));
}

#[test]
fn cmp_doubles_throughput_on_disjoint_workloads() {
    // Two cores over disjoint column sets should finish the combined
    // work in (much) less than twice one core's time.
    let cfg = Design::A.config(Scheme::MulticastFastLru);
    let t0 = trace_for("twolf", 5, 4_000, 400);

    let mut solo = CacheSystem::new(&cfg);
    let m_solo = solo.run(&t0.clone()).expect("no faults injected");
    let solo_cycles = m_solo.cycles;

    let mut duo = CacheSystem::with_cores(&cfg, 2);
    let t1 = trace_for("twolf", 6, 4_000, 400);
    let ms = duo.run_cmp(&[t0, t1]).expect("no faults injected");
    let duo_cycles = ms[0].cycles;
    assert!(
        (duo_cycles as f64) < 1.7 * solo_cycles as f64,
        "2 cores, 2x work: {duo_cycles} cycles vs solo {solo_cycles}"
    );
}

#[test]
fn energy_report_orders_designs_like_the_topology_argument() {
    let profile = BenchmarkProfile::by_name("vpr").expect("vpr exists");
    let scale = test_scale();
    let net_energy = |d: Design| {
        let (m, _) = run_cell(d, Scheme::MulticastFastLru, &profile, scale);
        let e = energy_of_run(&d.config(Scheme::MulticastFastLru), &m);
        (e.link_pj + e.router_pj) / m.accesses() as f64
    };
    let a = net_energy(Design::A);
    let f = net_energy(Design::F);
    assert!(f < a, "halo F network energy {f:.0} pJ !< mesh A {a:.0} pJ");
}

#[test]
fn energy_total_is_sum_of_components() {
    let profile = BenchmarkProfile::by_name("gcc").expect("gcc exists");
    let (m, _) = run_cell(Design::B, Scheme::UnicastFastLru, &profile, test_scale());
    let e = energy_of_run(&Design::B.config(Scheme::UnicastFastLru), &m);
    let sum = e.link_pj + e.router_pj + e.bank_pj + e.memory_pj;
    assert!((e.total_pj() - sum).abs() < 1e-6);
    assert!(e.per_access_pj() * m.accesses() as f64 - e.total_pj() < 1e-6);
}

#[test]
fn gating_tradeoff_is_monotone() {
    let mut prev_saved = 0.0;
    for off in 1..=7 {
        let g = gating_estimate(Design::A, off);
        assert!(
            g.leakage_saved > prev_saved,
            "more banks off saves more leakage"
        );
        assert_eq!(g.ways_on as usize, 16 - off);
        prev_saved = g.leakage_saved;
    }
}

#[test]
fn static_nuca_matches_dynamic_hit_rate_but_spreads_hits() {
    // Same associativity => comparable hit rate; static placement =>
    // hits spread uniformly over the home banks instead of
    // concentrating at the MRU bank.
    let vpr = BenchmarkProfile::by_name("vpr").unwrap();
    let (stat, _) = run_cell(Design::A, Scheme::StaticNuca, &vpr, test_scale());
    let (dynamic, _) = run_cell(Design::A, Scheme::MulticastFastLru, &vpr, test_scale());
    assert!(
        (stat.hit_rate() - dynamic.hit_rate()).abs() < 0.1,
        "same associativity: static {:.3} vs dynamic {:.3}",
        stat.hit_rate(),
        dynamic.hit_rate()
    );
    assert!(stat.mru_concentration() < dynamic.mru_concentration());
}

#[test]
fn migration_beats_static_placement_on_high_locality_data_delivery() {
    // For `art` (hits overwhelmingly at the MRU position) migration puts
    // the data ~one hop down the column; static placement averages the
    // whole column distance. Compare the *data-arrival* latency of hits
    // under unicast Fast-LRU, which isolates the placement effect from
    // the multicast notification traffic (a real tax the multicast
    // schemes pay — and itself an interesting measured fact: on
    // always-MRU-hit workloads the notify storm can cost more than the
    // distance it saves).
    let art = BenchmarkProfile::by_name("art").unwrap();
    let scale = ExperimentScale {
        warmup: 20_000,
        measured: 600,
        active_sets: 64,
        seed: 5,
    };
    let (stat, _) = run_cell(Design::A, Scheme::StaticNuca, &art, scale);
    let (dynamic, _) = run_cell(Design::A, Scheme::UnicastFastLru, &art, scale);
    // All hits, all positions: static placement's uniform distance.
    let all_hits = |m: &nucanet::Metrics| {
        let hits: Vec<_> = m
            .records
            .iter()
            .filter(|r| r.hit_position.is_some())
            .collect();
        hits.iter().map(|r| r.data_latency as f64).sum::<f64>() / hits.len() as f64
    };
    // The blocks migration placed at the MRU bank: one hop away.
    let mru_hits = |m: &nucanet::Metrics| {
        let hits: Vec<_> = m
            .records
            .iter()
            .filter(|r| r.hit_position == Some(0))
            .collect();
        hits.iter().map(|r| r.data_latency as f64).sum::<f64>() / hits.len() as f64
    };
    assert!(
        mru_hits(&dynamic) < all_hits(&stat),
        "art: MRU-hit data latency {:.1} !< static average {:.1}",
        mru_hits(&dynamic),
        all_hits(&stat)
    );
    // Honest measured caveat: averaged over ALL hits, the deep-hit walk
    // tail can erase the MRU advantage — exactly the cost Fast-LRU's
    // multicast variant attacks (and why the paper multicasts).
    let (mc, _) = run_cell(Design::A, Scheme::MulticastFastLru, &art, scale);
    assert!(
        mc.avg_miss_latency() <= dynamic.avg_miss_latency(),
        "multicast tag-match must not lose on misses"
    );
}

#[test]
fn static_nuca_rejects_non_uniform_designs() {
    // 5 banks do not divide 1024 sets; the constructor must say so.
    let result = std::panic::catch_unwind(|| {
        let _ = CacheSystem::new(&Design::F.config(Scheme::StaticNuca));
    });
    assert!(result.is_err(), "Design F + static NUCA must be rejected");
}
