//! Proves the warm-evaluation sweep path is allocation-free in steady
//! state.
//!
//! Two properties, both behind a counting global allocator (its own
//! integration-test binary, like `alloc_free_step`, because the
//! `#[global_allocator]` is process-wide; everything lives in one
//! `#[test]` so no parallel test inflates the counter):
//!
//! 1. the **warm-reset window** — `CacheSystem::reset_for` plus
//!    in-place trace regeneration — performs exactly zero allocations
//!    once the first evaluations have grown every buffer to its
//!    high-water mark (clean, checker-free points);
//! 2. end to end, steady-state warm points through
//!    [`SimArena::run_point`] allocate an identical amount per point
//!    (no creep) and strictly less than evaluating the same point with
//!    fresh construction.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use nucanet::experiments::ExperimentScale;
use nucanet::metrics::MetricsCapture;
use nucanet::sweep::{SimArena, SweepPoint};
use nucanet::{CacheSystem, Design, Scheme, StructuralCache};
use nucanet_workload::{BenchmarkProfile, SynthConfig, TraceGenerator};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const WARMUP: usize = 300;
const MEASURED: usize = 60;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn point() -> SweepPoint {
    SweepPoint {
        label: "alloc-gate".into(),
        config: Design::A.config(Scheme::MulticastFastLru).into(),
        profile: BenchmarkProfile::by_name("twolf").expect("profile"),
        scale: ExperimentScale {
            warmup: WARMUP,
            measured: MEASURED,
            active_sets: 32,
            seed: 0xFEED,
        },
    }
}

#[test]
fn warm_sweep_path_is_allocation_free_in_steady_state() {
    // ---- Property 1: the warm-reset window allocates exactly zero. ----
    let cfg = Design::A.config(Scheme::MulticastFastLru);
    let mut sys = CacheSystem::new(&cfg);
    let profile = BenchmarkProfile::by_name("twolf").expect("profile");
    let syn = SynthConfig {
        active_sets: 32,
        seed: 7,
        ..Default::default()
    };
    let mut gen = TraceGenerator::new(profile, syn);
    let mut trace = gen.generate(WARMUP, MEASURED);

    // Warm-up: two full evaluations grow every buffer (bank maps, VC
    // queues, trace storage, controller queues) to its high-water mark.
    for _ in 0..2 {
        sys.set_metrics_capture(MetricsCapture::Streaming);
        sys.run(&trace).expect("healthy run");
        assert!(sys.reset_for(&cfg), "same machine must warm-reset");
        gen.reset_for(profile, syn);
        gen.generate_into(&mut trace, WARMUP, MEASURED);
    }
    sys.set_metrics_capture(MetricsCapture::Streaming);
    sys.run(&trace).expect("healthy run");

    let before = allocations();
    assert!(sys.reset_for(&cfg), "same machine must warm-reset");
    gen.reset_for(profile, syn);
    gen.generate_into(&mut trace, WARMUP, MEASURED);
    let window = allocations() - before;
    assert_eq!(
        window, 0,
        "warm-reset window (reset_for + trace regeneration) allocated {window} times"
    );

    // ---- Property 2: steady-state arena points allocate equally, ----
    // ---- and less than fresh construction of the same point.      ----
    let p = point();
    let capture = MetricsCapture::Streaming;
    let structures = StructuralCache::new();
    let mut arena = SimArena::new();
    arena
        .run_point(&p, capture, &structures)
        .expect("first (cold) arena point succeeds");
    arena
        .run_point(&p, capture, &structures)
        .expect("second arena point succeeds");

    let mut count_one = || {
        let before = allocations();
        arena
            .run_point(&p, capture, &structures)
            .expect("steady-state arena point succeeds");
        allocations() - before
    };
    let k = count_one();
    let k1 = count_one();
    assert_eq!(
        k, k1,
        "steady-state warm points must allocate identically (no creep): {k} vs {k1}"
    );

    // Fresh construction: a brand-new arena and structural cache pay
    // the layout build, the routing tables, and every simulator buffer
    // again. The warm path must be strictly cheaper.
    let before = allocations();
    let mut cold_arena = SimArena::new();
    let cold_structures = StructuralCache::new();
    cold_arena
        .run_point(&p, capture, &cold_structures)
        .expect("fresh-construction point succeeds");
    let fresh = allocations() - before;
    assert!(
        k < fresh,
        "warm point must allocate strictly less than fresh construction: warm {k} vs fresh {fresh}"
    );
}
