//! Integration tests for the two-phase threaded cycle kernel: the
//! determinism contract (bit-identical delivered sequences, statistics,
//! and system-level metrics for any `sim_threads` value) exercised over
//! real end-to-end simulations, with fault schedules and the runtime
//! invariant checker on.

use nucanet::experiments::ExperimentScale;
use nucanet::sweep::derive_seed;
use nucanet::{CacheSystem, Design, FaultConfig, Metrics, Scheme};
use nucanet_noc::{
    Dest, Endpoint, FaultEvent, FaultSchedule, FuzzOptions, LinkId, Network, NetStats, NodeId,
    Packet, PacketId, RouterParams, RoutingSpec, Topology,
};
use nucanet_workload::{BenchmarkProfile, SynthConfig, TraceGenerator};

/// One network-level campaign: Fig. 7 mesh geometry under XY routing
/// with a transient fault schedule, the invariant checker on, and a mix
/// of unicasts and column multicasts. Returns the full delivered
/// sequence and the final statistics.
fn mesh_campaign(sim_threads: u32) -> (Vec<(PacketId, Endpoint, u64)>, NetStats) {
    let topo = Topology::mesh(8, 8, &[1; 7], &[1; 7]);
    let table = RoutingSpec::Xy.build(&topo).expect("mesh routes");
    let params = RouterParams {
        sim_threads,
        ..RouterParams::hpca07()
    };
    let mut net: Network<u64> = Network::new(topo, table, params);
    net.enable_invariant_checker();
    // Two transient link faults: the kernel must agree on every reroute
    // and every blocked cycle, not just on the happy path.
    net.set_fault_schedule(FaultSchedule::new(vec![
        FaultEvent {
            cycle: 40,
            link: LinkId(3),
            up: false,
        },
        FaultEvent {
            cycle: 220,
            link: LinkId(3),
            up: true,
        },
        FaultEvent {
            cycle: 90,
            link: LinkId(17),
            up: false,
        },
        FaultEvent {
            cycle: 260,
            link: LinkId(17),
            up: true,
        },
    ]));
    let mut x: u64 = 0x1234_5678_9ABC_DEF0;
    let mut lcg = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 16
    };
    let mut delivered = Vec::new();
    let mut inbox = Vec::new();
    for wave in 0..6u64 {
        for i in 0..80u64 {
            let r = lcg();
            let a = (r % 64) as u32;
            let mut b = ((r >> 8) % 64) as u32;
            if a == b {
                b = (b + 1) % 64;
            }
            if r & 0x4000 == 0 {
                // Column multicast: the path-multicast split machinery
                // (the part the compute phase defers) must stay covered.
                let col = (b % 8) as u16;
                let path: Vec<Endpoint> = (0..8)
                    .map(|row| Endpoint::at(net.topology().node_at(col, row)))
                    .collect();
                net.inject(Packet::new(
                    Endpoint::at(NodeId(a)),
                    Dest::multicast(path),
                    1,
                    wave * 100 + i,
                ));
            } else {
                let flits = if r & 0x10000 == 0 { 1 } else { 5 };
                net.inject(Packet::new(
                    Endpoint::at(NodeId(a)),
                    Dest::unicast(Endpoint::at(NodeId(b))),
                    flits,
                    wave * 100 + i,
                ));
            }
        }
        while net.is_busy() || net.next_event_cycle().is_some() {
            net.advance().expect("campaign traffic cannot deadlock");
            net.drain_all_delivered_into(&mut inbox);
            for d in inbox.drain(..) {
                delivered.push((d.packet.id, d.endpoint, net.cycle()));
            }
        }
    }
    let checker = net.take_invariant_checker().expect("checker was enabled");
    assert!(
        checker.violations().is_empty(),
        "sim_threads={sim_threads}: {:?}",
        checker.violations()
    );
    (delivered, net.stats().clone())
}

#[test]
fn faulted_checked_campaign_is_bit_identical_for_every_thread_count() {
    let (serial_seq, serial_stats) = mesh_campaign(1);
    assert!(
        serial_seq.len() > 400,
        "campaign must deliver real traffic, got {}",
        serial_seq.len()
    );
    assert!(
        serial_stats.link_down_events > 0,
        "the fault schedule must actually fire"
    );
    for threads in [2, 4, 8] {
        let (seq, stats) = mesh_campaign(threads);
        assert_eq!(
            serial_seq, seq,
            "delivered sequence must not depend on sim_threads={threads}"
        );
        assert_eq!(
            serial_stats, stats,
            "statistics must not depend on sim_threads={threads}"
        );
    }
}

/// A campaign engineered to stress the *sharded* commit phase's
/// run/barrier machinery: every wave floods the mesh with column
/// multicasts from staggered sources, so fresh multicast splits
/// (deferred routers — commit barriers) land between runs of
/// committable routers at many different worklist offsets, while
/// replica-reservation releases (the commit-time `reserved` flips the
/// pre-scan must predict) fire continuously. A fault pulse in the
/// middle of the hot region forces reroutes through the same cycles.
/// Returns the delivered sequence and final statistics.
fn shard_boundary_campaign(sim_threads: u32) -> (Vec<(PacketId, Endpoint, u64)>, NetStats) {
    let topo = Topology::mesh(8, 8, &[1; 7], &[1; 7]);
    let table = RoutingSpec::Xy.build(&topo).expect("mesh routes");
    let params = RouterParams {
        sim_threads,
        ..RouterParams::hpca07()
    };
    let mut net: Network<u64> = Network::new(topo, table, params);
    net.enable_invariant_checker();
    // A short down/up pulse on a central link while the multicast storm
    // is in flight: the repair lands while replica reservations from
    // the same cycles are still being released.
    net.set_fault_schedule(FaultSchedule::new(vec![
        FaultEvent {
            cycle: 60,
            link: LinkId(40),
            up: false,
        },
        FaultEvent {
            cycle: 140,
            link: LinkId(40),
            up: true,
        },
    ]));
    let mut delivered = Vec::new();
    let mut inbox = Vec::new();
    for wave in 0..4u64 {
        // Every column gets a path multicast per wave, each from a
        // different source row, so splits happen at routers spread
        // across the sorted worklist — including positions adjacent to
        // the static round-robin shard boundaries.
        for col in 0..8u16 {
            let src_row = ((wave + u64::from(col)) % 8) as u16;
            let src = net.topology().node_at((col + 3) % 8, src_row);
            let path: Vec<Endpoint> = (0..8)
                .map(|row| Endpoint::at(net.topology().node_at(col, row)))
                .collect();
            net.inject(Packet::new(
                Endpoint::at(src),
                Dest::multicast(path),
                3,
                wave * 100 + u64::from(col),
            ));
        }
        // Background unicasts keep the non-multicast runs long enough
        // to shard (>= the kernel's minimum parallel worklist).
        for i in 0..32u64 {
            let a = ((wave * 13 + i * 5) % 64) as u32;
            let b = (u64::from(a) + 17 + (i % 7) * 9) as u32 % 64;
            net.inject(Packet::new(
                Endpoint::at(NodeId(a)),
                Dest::unicast(Endpoint::at(NodeId(b))),
                if i % 3 == 0 { 5 } else { 1 },
                wave * 1000 + i,
            ));
        }
        while net.is_busy() || net.next_event_cycle().is_some() {
            net.advance().expect("campaign traffic cannot deadlock");
            net.drain_all_delivered_into(&mut inbox);
            for d in inbox.drain(..) {
                delivered.push((d.packet.id, d.endpoint, net.cycle()));
            }
        }
    }
    let checker = net.take_invariant_checker().expect("checker was enabled");
    assert!(
        checker.violations().is_empty(),
        "sim_threads={sim_threads}: {:?}",
        checker.violations()
    );
    (delivered, net.stats().clone())
}

#[test]
fn shard_boundary_multicast_fault_campaign_is_bit_identical() {
    let (serial_seq, serial_stats) = shard_boundary_campaign(1);
    assert!(
        serial_seq.len() > 300,
        "campaign must deliver real multicast traffic, got {}",
        serial_seq.len()
    );
    assert!(
        serial_stats.replications > 0,
        "the multicast storm must actually split"
    );
    assert!(
        serial_stats.link_down_events > 0,
        "the fault pulse must actually fire"
    );
    for threads in [2, 4, 8] {
        let (seq, stats) = shard_boundary_campaign(threads);
        assert_eq!(
            serial_seq, seq,
            "delivered sequence must not depend on sim_threads={threads}"
        );
        assert_eq!(
            serial_stats, stats,
            "statistics must not depend on sim_threads={threads}"
        );
    }
}

/// Runs one (design, scheme) cell end to end with the given kernel
/// thread count, checker on, and returns its metrics.
fn cell_metrics(design: Design, scheme: Scheme, sim_threads: u32) -> Metrics {
    let mut cfg = design.config(scheme);
    cfg.check_invariants = true;
    cfg.router.sim_threads = sim_threads;
    // A transient fault exercises reroute + retry paths through the
    // whole cache system, not just the network.
    cfg.faults = Some(FaultConfig::random(1, (50, 400), Some(300)));
    let bench = BenchmarkProfile::by_name("twolf").expect("benchmark exists");
    let scale = ExperimentScale {
        warmup: 800,
        measured: 150,
        active_sets: 32,
        seed: derive_seed(0xFEED, 0),
    };
    let mut gen = TraceGenerator::new(
        bench,
        SynthConfig {
            active_sets: scale.active_sets,
            seed: scale.seed,
            ..Default::default()
        },
    );
    let trace = gen.generate(scale.warmup, scale.measured);
    let mut sys = CacheSystem::new(&cfg);
    sys.run(&trace).expect("cell completes")
}

#[test]
fn cache_system_metrics_are_bit_identical_for_every_thread_count() {
    for (design, scheme) in [
        (Design::A, Scheme::MulticastFastLru),
        (Design::E, Scheme::MulticastFastLru),
    ] {
        let serial = cell_metrics(design, scheme, 1);
        for threads in [2, 4, 8] {
            let threaded = cell_metrics(design, scheme, threads);
            assert_eq!(
                serial, threaded,
                "{design:?}/{scheme}: metrics must not depend on sim_threads={threads}"
            );
        }
    }
}

/// A campaign shaped to drive the adaptive gate through both kernels:
/// wide bursts (worklists spanning most of the mesh, where sharding is
/// plausible) alternating with single-packet trickles (worklists of a
/// handful of routers, where dispatch can never pay). Returns the
/// delivered sequence, the statistics, and the phase breakdown.
fn adaptive_campaign(
    sim_threads: u32,
) -> (
    Vec<(PacketId, Endpoint, u64)>,
    NetStats,
    nucanet_noc::PhaseStats,
) {
    let topo = Topology::mesh(8, 8, &[1; 7], &[1; 7]);
    let table = RoutingSpec::Xy.build(&topo).expect("mesh routes");
    let params = RouterParams {
        sim_threads,
        ..RouterParams::hpca07()
    };
    let mut net: Network<u64> = Network::new(topo, table, params);
    net.enable_invariant_checker();
    let mut delivered = Vec::new();
    let mut inbox = Vec::new();
    for wave in 0..12u64 {
        if wave % 2 == 0 {
            // Wide burst: all-to-all-ish traffic keeps ~all routers on
            // the worklist for many consecutive cycles.
            for i in 0..64u64 {
                let a = ((wave * 31 + i * 7) % 64) as u32;
                let b = (a + 1 + (i % 11) as u32 * 5) % 64;
                net.inject(Packet::new(
                    Endpoint::at(NodeId(a)),
                    Dest::unicast(Endpoint::at(NodeId(b))),
                    if i % 4 == 0 { 5 } else { 1 },
                    wave * 100 + i,
                ));
            }
        } else {
            // Trickle: one short unicast — worklists of a few routers,
            // far below any sane parallel threshold.
            let a = ((wave * 17) % 64) as u32;
            net.inject(Packet::new(
                Endpoint::at(NodeId(a)),
                Dest::unicast(Endpoint::at(NodeId((a + 9) % 64))),
                1,
                wave * 100,
            ));
        }
        while net.is_busy() || net.next_event_cycle().is_some() {
            net.advance().expect("campaign traffic cannot deadlock");
            net.drain_all_delivered_into(&mut inbox);
            for d in inbox.drain(..) {
                delivered.push((d.packet.id, d.endpoint, net.cycle()));
            }
        }
    }
    let checker = net.take_invariant_checker().expect("checker was enabled");
    assert!(
        checker.violations().is_empty(),
        "sim_threads={sim_threads}: {:?}",
        checker.violations()
    );
    let phase = net.phase_stats();
    (delivered, net.stats().clone(), phase)
}

#[test]
fn adaptive_gate_switches_kernels_mid_run_and_stays_bit_identical() {
    let (serial_seq, serial_stats, serial_phase) = adaptive_campaign(1);
    assert!(serial_seq.len() > 300, "got {}", serial_seq.len());
    assert_eq!(
        serial_phase.adaptive_parallel_cycles, 0,
        "one thread never consults the gate"
    );
    assert_eq!(serial_phase.adaptive_serial_cycles, 0);
    for threads in [2, 4] {
        let (seq, stats, phase) = adaptive_campaign(threads);
        assert_eq!(
            serial_seq, seq,
            "delivered sequence must not depend on sim_threads={threads}"
        );
        assert_eq!(
            serial_stats, stats,
            "statistics must not depend on sim_threads={threads}"
        );
        // The gate's two-cycle bootstrap prices both kernels, so any
        // gated run visits each at least once — whatever the host's
        // core count and however calibration then settles.
        assert!(
            phase.adaptive_parallel_cycles > 0,
            "sim_threads={threads}: gate never sharded (phase {phase:?})"
        );
        assert!(
            phase.adaptive_serial_cycles > 0,
            "sim_threads={threads}: gate never ran serial (phase {phase:?})"
        );
        assert_eq!(
            phase.parallel_cycles, phase.adaptive_parallel_cycles,
            "every sharded cycle is a gate decision"
        );
        assert_eq!(
            phase.parallel_cycles + phase.serial_cycles,
            stats.cycles,
            "every cycle ran exactly one kernel"
        );
    }
}

#[test]
fn differential_fuzz_passes_with_four_sim_threads() {
    let report = nucanet_noc::run_fuzz(&FuzzOptions {
        iters: 25,
        seed: 0xD1FF,
        check: true,
        max_cycles: 50_000,
        sim_threads: 4,
        warm_iters: 10,
        strategy: None,
        cross_strategy: false,
    });
    assert!(
        report.failure.is_none(),
        "fuzz failure under sim_threads=4: {:?}",
        report.failure
    );
    assert!(report.deliveries > 0);
}
