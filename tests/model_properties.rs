//! Property tests over the timing, area, energy, and cache models:
//! monotonicity, conservation, and dimensional sanity for arbitrary
//! parameters — the invariants every calibration must preserve.

use nucanet_cache::{AccessResult, BankSetModel, ReplacementPolicy};
use nucanet_timing::{BankModel, EnergyModel, LinkAreaModel, RouterAreaModel, Technology, WireModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Larger banks are never faster, never smaller, never cheaper to
    /// access energetically.
    #[test]
    fn bank_model_monotone(a in 1u32..2048, b in 1u32..2048) {
        let (small, large) = (a.min(b), a.max(b));
        let (ms, ml) = (BankModel::new(small), BankModel::new(large));
        prop_assert!(ml.tag_match_ps() >= ms.tag_match_ps());
        prop_assert!(ml.tag_match_replace_ps() >= ms.tag_match_replace_ps());
        prop_assert!(ml.area_mm2() >= ms.area_mm2());
        let e = EnergyModel::default();
        prop_assert!(e.bank_pj(large) >= e.bank_pj(small));
    }

    /// Replacement access is never faster than a bare tag match.
    #[test]
    fn replace_at_least_tag_match(kb in 1u32..4096) {
        let m = BankModel::new(kb);
        prop_assert!(m.tag_match_replace_cycles() >= m.tag_match_cycles());
    }

    /// Wire delay in cycles is monotone in length and never zero for a
    /// positive length.
    #[test]
    fn wire_cycles_monotone(l1 in 0.01f64..30.0, l2 in 0.01f64..30.0) {
        let w = WireModel::new(&Technology::hpca07_65nm());
        let (short, long) = (l1.min(l2), l1.max(l2));
        prop_assert!(w.cycles_for_mm(long) >= w.cycles_for_mm(short));
        prop_assert!(w.cycles_for_mm(short) >= 1);
    }

    /// A faster clock never needs fewer cycles for the same wire.
    #[test]
    fn faster_clock_needs_more_cycles(mm in 0.1f64..10.0, ghz in 1.0f64..10.0) {
        let slow = Technology { clock_ghz: ghz, ..Technology::hpca07_65nm() };
        let fast = Technology { clock_ghz: ghz * 2.0, ..Technology::hpca07_65nm() };
        prop_assert!(
            WireModel::new(&fast).cycles_for_mm(mm) >= WireModel::new(&slow).cycles_for_mm(mm)
        );
    }

    /// Router area grows with every port added.
    #[test]
    fn router_area_monotone_in_ports(p in 1u32..20) {
        let m = RouterAreaModel::new(&Technology::hpca07_65nm(), 4, 4);
        prop_assert!(m.area_mm2(p + 1, p + 1) > m.area_mm2(p, p));
    }

    /// Link area is additive over segments.
    #[test]
    fn link_area_additive(a in 0.0f64..10.0, b in 0.0f64..10.0) {
        let m = LinkAreaModel::new(&Technology::hpca07_65nm());
        let whole = m.area_mm2(a + b, true);
        let parts = m.area_mm2(a, true) + m.area_mm2(b, true);
        prop_assert!((whole - parts).abs() < 1e-9);
    }

    /// A bank set never holds duplicate tags, never exceeds its
    /// associativity, and hits report positions inside the stack.
    #[test]
    fn bank_set_invariants(
        ways in 1usize..20,
        ops in proptest::collection::vec((0u32..40, proptest::bool::ANY), 1..300),
        policy_idx in 0usize..3,
    ) {
        let policy = [ReplacementPolicy::Promotion, ReplacementPolicy::Lru, ReplacementPolicy::FastLru]
            [policy_idx];
        let mut m = BankSetModel::new(ways, 1, policy);
        for (tag, write) in ops {
            match m.access(0, tag, write) {
                AccessResult::Hit { position } => prop_assert!(position < ways),
                AccessResult::Miss { .. } => {}
            }
            // Invariants after every step.
            let mut tags: Vec<u32> = m.stack_of(0).iter().flatten().map(|b| b.tag).collect();
            prop_assert!(tags.len() <= ways);
            let n = tags.len();
            tags.sort_unstable();
            tags.dedup();
            prop_assert_eq!(tags.len(), n, "duplicate tag in the stack");
            // Holes only in the bottom suffix (contiguity invariant the
            // distributed protocols rely on).
            let stack = m.stack_of(0);
            let first_hole = stack.iter().position(Option::is_none).unwrap_or(stack.len());
            prop_assert!(
                stack[first_hole..].iter().all(Option::is_none),
                "hole in the middle of the stack"
            );
        }
    }

    /// A block that was written stays dirty until it is evicted.
    #[test]
    fn dirty_bit_is_sticky(reads in 1usize..30) {
        let mut m = BankSetModel::new(8, 1, ReplacementPolicy::Lru);
        m.access(0, 99, true); // dirty
        for t in 0..reads as u32 {
            m.access(0, t % 7, false);
        }
        if let Some(b) = m.stack_of(0).iter().flatten().find(|b| b.tag == 99) {
            prop_assert!(b.dirty, "dirty bit lost while resident");
        }
    }

    /// Promotion and LRU agree on *which* tags are resident after any
    /// miss-only (no-reuse) sequence — they only ever differ in order
    /// and in reuse handling.
    #[test]
    fn policies_agree_on_cold_sequences(n in 1usize..40) {
        let mut lru = BankSetModel::new(16, 1, ReplacementPolicy::Lru);
        let mut promo = BankSetModel::new(16, 1, ReplacementPolicy::Promotion);
        for t in 0..n as u32 {
            lru.access(0, t, false);
            promo.access(0, t, false);
        }
        let set = |m: &BankSetModel| {
            let mut v: Vec<u32> = m.stack_of(0).iter().flatten().map(|b| b.tag).collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(set(&lru), set(&promo));
    }
}
