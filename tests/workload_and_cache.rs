//! Cross-crate properties between the workload generator and the
//! functional cache: address-map agreement, hit-rate calibration, the
//! LRU-vs-Promotion ordering, and a proptest oracle for the cache model.

use std::collections::HashMap;

use nucanet_cache::{AccessResult, AddressMap, CacheModel, ReplacementPolicy};
use nucanet_suite::Lcg;
use nucanet_workload::{BenchmarkProfile, SynthConfig, TraceGenerator, ALL_BENCHMARKS};
use proptest::prelude::*;

#[test]
fn generator_addresses_agree_with_address_map() {
    // The generator composes addresses with its own copy of the §5
    // layout; decomposing with the cache crate must agree: the set
    // (column, index) stays within `active_sets` and tags are distinct
    // per block.
    let map = AddressMap::hpca07();
    let cfg = SynthConfig {
        active_sets: 96,
        seed: 11,
        ..Default::default()
    };
    let mut gen = TraceGenerator::new(BenchmarkProfile::by_name("apsi").expect("apsi exists"), cfg);
    let t = gen.generate(0, 5_000);
    for a in t.all() {
        let b = map.decompose(a.addr);
        let set = b.index * map.columns() + b.column;
        assert!(set < 96, "set {set} outside the active range");
        assert_eq!(map.compose(b), a.addr, "compose/decompose roundtrip");
    }
}

#[test]
fn calibrated_hit_rates_have_the_papers_shape() {
    // art ~ miss-free; applu/lucas streaming; the rest in between.
    let mut rates: HashMap<&str, f64> = HashMap::new();
    for b in ALL_BENCHMARKS {
        let mut gen = TraceGenerator::new(
            b,
            SynthConfig {
                seed: 1,
                ..Default::default()
            },
        );
        let t = gen.generate(30_000, 30_000);
        let mut l2 = CacheModel::new(AddressMap::hpca07(), 16, ReplacementPolicy::Lru);
        for a in t.warmup() {
            l2.access(a.addr, a.write);
        }
        l2.reset_stats();
        for a in t.measured() {
            l2.access(a.addr, a.write);
        }
        rates.insert(b.name, l2.stats().hit_rate());
    }
    assert!(rates["art"] > 0.95, "art {:.3}", rates["art"]);
    assert!(rates["applu"] < 0.45, "applu {:.3}", rates["applu"]);
    assert!(rates["lucas"] < 0.45, "lucas {:.3}", rates["lucas"]);
    assert!(rates["mcf"] > rates["applu"] && rates["mcf"] < rates["art"]);
    for name in ["apsi", "galgel", "mesa", "bzip2", "parser", "twolf", "vpr"] {
        assert!(
            (0.6..0.99).contains(&rates[name]),
            "{name} {:.3}",
            rates[name]
        );
    }
}

#[test]
fn lru_hit_rate_at_least_promotion_for_all_benchmarks() {
    // §3.2: "The LRU generates 14% higher cache hit rate than Promotion."
    for b in ALL_BENCHMARKS {
        let mut gen = TraceGenerator::new(
            b,
            SynthConfig {
                seed: 9,
                ..Default::default()
            },
        );
        let t = gen.generate(20_000, 20_000);
        let run = |policy| {
            let mut l2 = CacheModel::new(AddressMap::hpca07(), 16, policy);
            for a in t.warmup() {
                l2.access(a.addr, a.write);
            }
            l2.reset_stats();
            for a in t.measured() {
                l2.access(a.addr, a.write);
            }
            l2.stats().hit_rate()
        };
        let lru = run(ReplacementPolicy::Lru);
        let promo = run(ReplacementPolicy::Promotion);
        // Individual benchmarks can tie within noise; none may invert
        // meaningfully (the paper reports LRU ahead on average).
        assert!(
            lru + 2e-3 >= promo,
            "{}: LRU {:.4} < promotion {:.4}",
            b.name,
            lru,
            promo
        );
    }
}

#[test]
fn mru_concentration_is_higher_under_lru() {
    for name in ["gcc", "vpr", "mesa"] {
        let b = BenchmarkProfile::by_name(name).expect("benchmark exists");
        let mut gen = TraceGenerator::new(
            b,
            SynthConfig {
                seed: 4,
                ..Default::default()
            },
        );
        let t = gen.generate(20_000, 20_000);
        let run = |policy| {
            let mut l2 = CacheModel::new(AddressMap::hpca07(), 16, policy);
            for a in t.all() {
                l2.access(a.addr, a.write);
            }
            l2.stats().mru_concentration()
        };
        assert!(
            run(ReplacementPolicy::Lru) > run(ReplacementPolicy::Promotion),
            "{name}: MRU concentration ordering"
        );
    }
}

/// Naive reference: exact LRU over (column, index) sets.
struct NaiveLru {
    map: AddressMap,
    ways: usize,
    sets: HashMap<(u32, u32), Vec<u32>>,
}

impl NaiveLru {
    fn access(&mut self, addr: u32) -> bool {
        let b = self.map.decompose(addr);
        let stack = self.sets.entry((b.column, b.index)).or_default();
        if let Some(pos) = stack.iter().position(|&t| t == b.tag) {
            stack.remove(pos);
            stack.insert(0, b.tag);
            true
        } else {
            stack.insert(0, b.tag);
            stack.truncate(self.ways);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The production cache model agrees with a naive LRU oracle on
    /// hit/miss outcomes for random streams.
    #[test]
    fn cache_model_matches_naive_lru(seed in 0u64..10_000, n in 10usize..600, ways in 1usize..9) {
        let map = AddressMap::new(6, 2, 4); // tiny: 4 columns x 16 sets
        let mut model = CacheModel::new(map, ways, ReplacementPolicy::Lru);
        let mut naive = NaiveLru { map, ways, sets: HashMap::new() };
        let mut g = Lcg(seed.wrapping_add(1));
        for _ in 0..n {
            let addr = map.compose(nucanet_cache::BlockAddr {
                column: g.below(4) as u32,
                index: g.below(16) as u32,
                tag: g.below(3 * ways as u64 + 2) as u32,
            });
            let want = naive.access(addr);
            let got = matches!(model.access(addr, false), AccessResult::Hit { .. });
            prop_assert_eq!(got, want, "divergence at addr {:#x}", addr);
        }
    }

    /// Trace generation is a pure function of (profile, config).
    #[test]
    fn generation_is_reproducible(seed in 0u64..10_000, n in 1usize..400) {
        let b = BenchmarkProfile::by_name("bzip2").expect("bzip2 exists");
        let cfg = SynthConfig { seed, active_sets: 32, ..Default::default() };
        let t1 = TraceGenerator::new(b, cfg).generate(0, n);
        let t2 = TraceGenerator::new(b, cfg).generate(0, n);
        prop_assert_eq!(t1, t2);
    }

    /// Zipf-skewed reuse means recently used blocks hit sooner: the
    /// model's hit rate can only improve when associativity grows.
    #[test]
    fn hit_rate_monotone_in_ways(seed in 0u64..1_000) {
        let b = BenchmarkProfile::by_name("twolf").expect("twolf exists");
        let cfg = SynthConfig { seed, active_sets: 64, ..Default::default() };
        let trace = TraceGenerator::new(b, cfg).generate(2_000, 4_000);
        let mut prev = -1.0f64;
        for ways in [2usize, 4, 8, 16] {
            let mut l2 = CacheModel::new(AddressMap::hpca07(), ways, ReplacementPolicy::Lru);
            for a in trace.all() {
                l2.access(a.addr, a.write);
            }
            let hr = l2.stats().hit_rate();
            prop_assert!(hr >= prev - 0.01, "{ways} ways: {hr} vs {prev}");
            prev = hr;
        }
    }
}
