//! Proves the *sharded* two-phase cycle kernel (SoA slabs, parallel
//! compute + sharded commit) is allocation-free in steady state, just
//! like the serial kernel (`alloc_free_step.rs`).
//!
//! The counting global allocator observes every thread in the process,
//! pool workers included. Warm-up grows each internal buffer to its
//! high-water mark — including the per-worker intent vectors and
//! commit mailboxes, whose contents are deterministic because commit
//! ownership is a static round-robin over worklist positions — after
//! which stepping to idle must not allocate on any thread. This lives
//! in its own integration-test binary because the `#[global_allocator]`
//! is process-wide and the counter must not see another test's
//! allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use nucanet_noc::packet::flits_for_bytes;
use nucanet_noc::{Dest, Endpoint, Network, NodeId, Packet, RouterParams, RoutingSpec, Topology};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 16
}

/// Same traffic shape as the serial alloc-free test: mixed unicasts,
/// block transfers, and column multicasts on the 16×16 mesh, enough
/// active routers per cycle to keep the kernel on the sharded path.
fn burst(net: &mut Network<u32>, seed: &mut u64) -> Vec<Packet<u32>> {
    let n = 256u64;
    let mut out = Vec::new();
    for _ in 0..48 {
        let a = lcg(seed) % n;
        let mut b = lcg(seed) % n;
        if a == b {
            b = (b + 1) % n;
        }
        let flits = if lcg(seed).is_multiple_of(2) {
            1
        } else {
            flits_for_bytes(64)
        };
        out.push(Packet::new(
            Endpoint::at(NodeId(a as u32)),
            Dest::unicast(Endpoint::at(NodeId(b as u32))),
            flits,
            a as u32,
        ));
    }
    for _ in 0..4 {
        let col = (lcg(seed) % 16) as u16;
        let src = NodeId((lcg(seed) % 256) as u32);
        let path: Vec<Endpoint> = (0..16)
            .map(|row| Endpoint::at(net.topology().node_at(col, row)))
            .filter(|e| e.node != src)
            .collect();
        out.push(Packet::new(
            Endpoint::at(src),
            Dest::multicast(path),
            1,
            0,
        ));
    }
    out
}

fn run_burst(net: &mut Network<u32>, packets: Vec<Packet<u32>>) {
    for p in packets {
        net.inject(p);
    }
    while net.is_busy() || net.next_event_cycle().is_some() {
        net.advance().expect("traffic cannot deadlock");
    }
    net.drain_all_delivered();
}

#[test]
fn steady_state_sharded_step_does_not_allocate() {
    let topo = Topology::mesh(16, 16, &[1; 15], &[1; 15]);
    let table = RoutingSpec::Xy.build(&topo).expect("mesh routes");
    let params = RouterParams {
        sim_threads: 4,
        ..RouterParams::hpca07()
    };
    let mut net: Network<u32> = Network::new(topo, table, params);
    assert_eq!(net.sim_threads(), 4);
    let mut seed = 0x9E3779B97F4A7C15u64;

    // Warm-up: spins up the worker pool and grows every buffer —
    // intents, per-worker scratch, commit mailboxes — to its
    // high-water mark.
    for _ in 0..12 {
        let packets = burst(&mut net, &mut seed);
        run_burst(&mut net, packets);
    }
    let phase = net.phase_stats();
    assert!(
        phase.parallel_cycles > 0,
        "warm-up must exercise the sharded kernel"
    );

    // Measured window: pre-build and inject before snapshotting the
    // counter (packet construction and `inject` allocate by design).
    let packets = burst(&mut net, &mut seed);
    for p in packets {
        net.inject(p);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    while net.is_busy() || net.next_event_cycle().is_some() {
        net.advance().expect("traffic cannot deadlock");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    net.drain_all_delivered();

    assert_eq!(
        after - before,
        0,
        "sharded Network::step allocated {} times in steady state",
        after - before
    );
}
