//! Integration tests for the parallel sweep engine: the determinism
//! contract (bit-identical metrics for any worker count) and the
//! constant-memory streaming capture mode, exercised over real
//! end-to-end simulations rather than synthetic fixtures.

use nucanet::experiments::{cell_point, fig7, fig7_parallel, fig7_points, ExperimentScale};
use nucanet::metrics::MetricsCapture;
use nucanet::sweep::{capacity_points, derive_seed, render_json, SweepPoint, SweepRunner};
use nucanet::{Design, FaultConfig, Scheme};
use nucanet_workload::BenchmarkProfile;

fn bench(name: &str) -> BenchmarkProfile {
    BenchmarkProfile::by_name(name).expect("benchmark exists")
}

/// A grid of 8+ points spanning schemes, designs, and benchmarks, each
/// with its own derived seed.
fn grid() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for (i, (design, scheme, name)) in [
        (Design::A, Scheme::UnicastLru, "gcc"),
        (Design::A, Scheme::MulticastFastLru, "gcc"),
        (Design::B, Scheme::UnicastFastLru, "twolf"),
        (Design::C, Scheme::MulticastPromotion, "vpr"),
        (Design::D, Scheme::UnicastPromotion, "mcf"),
        (Design::E, Scheme::MulticastFastLru, "art"),
        (Design::F, Scheme::MulticastFastLru, "mesa"),
        (Design::A, Scheme::StaticNuca, "parser"),
        (Design::E, Scheme::UnicastLru, "apsi"),
    ]
    .into_iter()
    .enumerate()
    {
        let scale = ExperimentScale {
            warmup: 800,
            measured: 150,
            active_sets: 32,
            seed: derive_seed(0xCAFE, i as u64),
        };
        points.push(cell_point(design, scheme, &bench(name), scale));
    }
    points
}

#[test]
fn one_worker_and_many_workers_agree_bit_for_bit() {
    let points = grid();
    assert!(points.len() >= 8, "acceptance floor: at least 8 points");
    let serial = SweepRunner::with_workers(1).run(&points);
    for workers in [2, 4, 8] {
        let parallel = SweepRunner::with_workers(workers).run(&points);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(
                s.metrics, p.metrics,
                "{}: metrics must not depend on worker count {workers}",
                s.label
            );
            assert_eq!(s.ipc, p.ipc, "{}", s.label);
        }
    }
}

/// A point whose mesh is cut by a permanent link fault: XY routing
/// cannot detour around the severed column-0 exit, so the point ends in
/// a watchdog error no matter which worker runs it.
fn cut_point() -> SweepPoint {
    let mut cfg = Design::A.config(Scheme::MulticastFastLru);
    cfg.router.watchdog_cycles = 2_000;
    let layout = cfg.build_layout();
    let n = layout.topo.node_at(0, 0);
    let r = layout.topo.router(n);
    let p = r
        .port_by_label(nucanet_noc::PortLabel::YPlus)
        .expect("mesh corner has a Y+ port");
    let link = r.ports[p.0 as usize].out_link.expect("port has a link");
    cfg.faults = Some(FaultConfig::permanent(link, 0));
    SweepPoint {
        label: "cut".into(),
        config: cfg.into(),
        profile: bench("gcc"),
        scale: ExperimentScale {
            warmup: 600,
            measured: 200,
            active_sets: 64,
            seed: 0xCAFE,
        },
    }
}

#[test]
fn fault_injected_sweeps_are_worker_count_invariant() {
    // The acceptance bar for the fault model: injected faults (transient
    // on every grid point, one permanent partition) must not perturb the
    // determinism contract — metrics, fault counters, and even the
    // failure diagnostics are bit-identical for any worker count.
    let mut points = grid();
    for p in &mut points {
        std::sync::Arc::make_mut(&mut p.config).faults =
            Some(FaultConfig::random(2, (1, 1_000), Some(400)));
    }
    points.push(cut_point());
    let baseline = SweepRunner::with_workers(1).try_run(&points);
    assert!(
        baseline.last().unwrap().is_err(),
        "the partitioned point must fail"
    );
    assert!(
        baseline.iter().filter(|r| r.is_ok()).count() >= 8,
        "every repairable point must survive"
    );
    assert!(
        baseline
            .iter()
            .flatten()
            .any(|o| o.metrics.net.link_down_events > 0),
        "injected faults must actually land during simulation"
    );
    for workers in [2, 4, 8] {
        let parallel = SweepRunner::with_workers(workers).try_run(&points);
        for (s, p) in baseline.iter().zip(&parallel) {
            match (s, p) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.label, b.label);
                    assert_eq!(
                        a.metrics, b.metrics,
                        "{}: faulted metrics must not depend on worker count {workers}",
                        a.label
                    );
                    assert_eq!(a.ipc, b.ipc, "{}", a.label);
                }
                (Err(a), Err(b)) => {
                    assert_eq!(a.label, b.label);
                    assert_eq!(
                        a.error, b.error,
                        "{}: failure diagnostics must not depend on worker count {workers}",
                        a.label
                    );
                }
                _ => panic!("success/failure split changed with worker count {workers}"),
            }
        }
    }
}

#[test]
fn figure_runners_are_worker_count_invariant() {
    let scale = ExperimentScale {
        warmup: 600,
        measured: 100,
        active_sets: 32,
        seed: 0xCAFE,
    };
    let serial = fig7(scale);
    let parallel = fig7_parallel(scale, &SweepRunner::with_workers(4));
    assert_eq!(serial, parallel);
}

#[test]
fn fig7_repeat_runs_are_bit_identical() {
    // Guards the event-wheel ordering contract: two runs of the same
    // Fig. 7 points must agree on every metric, down to the last bit —
    // not just on aggregate figures.
    let scale = ExperimentScale {
        warmup: 600,
        measured: 100,
        active_sets: 32,
        seed: 0xCAFE,
    };
    let points = fig7_points(scale);
    let a = SweepRunner::with_workers(1).run(&points);
    let b = SweepRunner::with_workers(2).run(&points);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.label, y.label);
        assert_eq!(
            x.metrics, y.metrics,
            "{}: stats must be bit-identical across repeat runs",
            x.label
        );
        assert_eq!(x.ipc.to_bits(), y.ipc.to_bits(), "{}", x.label);
    }
}

#[test]
fn streaming_capture_matches_full_capture_summaries() {
    let points = grid();
    let full = SweepRunner::with_workers(4)
        .capture(MetricsCapture::Full)
        .run(&points);
    let streaming = SweepRunner::with_workers(4)
        .capture(MetricsCapture::Streaming)
        .run(&points);
    for (f, s) in full.iter().zip(&streaming) {
        assert!(!f.metrics.records.is_empty(), "{}", f.label);
        assert!(
            s.metrics.records.is_empty(),
            "{}: streaming must not retain records",
            s.label
        );
        assert_eq!(f.metrics.accesses(), s.metrics.accesses());
        assert_eq!(f.metrics.hit_rate(), s.metrics.hit_rate());
        assert_eq!(f.metrics.avg_latency(), s.metrics.avg_latency());
        assert_eq!(f.metrics.avg_hit_latency(), s.metrics.avg_hit_latency());
        assert_eq!(f.metrics.avg_miss_latency(), s.metrics.avg_miss_latency());
        assert_eq!(f.metrics.latency_breakdown(), s.metrics.latency_breakdown());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(
                f.metrics.latency_percentile(q),
                s.metrics.latency_percentile(q),
                "{} p{q}",
                f.label
            );
        }
        assert_eq!(f.metrics.net, s.metrics.net);
        assert_eq!(f.metrics.cycles, s.metrics.cycles);
        assert_eq!(f.ipc, s.ipc);
    }
}

#[test]
fn streaming_memory_is_constant_in_trace_length() {
    // The streaming histogram's footprint is bounded by the number of
    // *distinct* latency values, not by the number of samples: running
    // 8x more accesses must not retain any per-access state.
    let mk = |measured: usize| {
        let scale = ExperimentScale {
            warmup: 800,
            measured,
            active_sets: 32,
            seed: 0xCAFE,
        };
        cell_point(Design::A, Scheme::MulticastFastLru, &bench("twolf"), scale)
    };
    let runner = SweepRunner::with_workers(1).capture(MetricsCapture::Streaming);
    let short = &runner.run(&[mk(200)])[0];
    let long = &runner.run(&[mk(1600)])[0];
    assert_eq!(long.metrics.accesses(), 1600);
    assert!(short.metrics.records.is_empty());
    assert!(long.metrics.records.is_empty());
    // Distinct observed latencies stay within the same fixed-size
    // histogram; the overflow map is the only growable part and is
    // bounded by distinct values > 4096 cycles (none at this scale).
    assert!(long.metrics.latency_histogram().overflow_len() <= 4096);
}

#[test]
fn capacity_sweep_renders_json_for_every_point() {
    let scale = ExperimentScale {
        warmup: 500,
        measured: 80,
        active_sets: 32,
        seed: 0xCAFE,
    };
    let points = capacity_points(bench("art"), scale);
    let runner = SweepRunner::with_workers(4);
    let outcomes = runner.run(&points);
    let json = render_json("sweep", runner.workers(), &points, &outcomes);
    assert_eq!(json.matches("\"label\":").count(), points.len());
    assert_eq!(json.matches("\"sim_cycles\":").count(), points.len());
    assert_eq!(json.matches("\"p99\":").count(), points.len());
}
