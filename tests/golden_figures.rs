//! Golden regression suite for the figure pipelines.
//!
//! Each test runs a reduced-scale slice of a paper figure and compares a
//! summary of *integer* counters (accesses, latency sums, hit counts,
//! network totals — nothing float-formatted) byte-for-byte against a
//! committed JSON snapshot in `tests/golden/`. The simulator is fully
//! deterministic, so any diff is a real behaviour change: either a bug,
//! or an intended model change that must be re-blessed.
//!
//! To regenerate the snapshots after an intended change:
//!
//! ```text
//! NUCANET_BLESS=1 cargo test --test golden_figures
//! ```
//!
//! and commit the rewritten files together with the change that caused
//! them, explaining the delta in the commit message.

use std::fmt::Write as _;
use std::path::PathBuf;

use nucanet::config::{Design, ALL_DESIGNS};
use nucanet::experiments::{run_cell, run_config, ExperimentScale};
use nucanet::scheme::{Scheme, ALL_SCHEMES};
use nucanet::Metrics;
use nucanet_noc::MulticastStrategy;
use nucanet_workload::BenchmarkProfile;

/// The scale every golden cell runs at. Small enough that the three
/// suites together stay in test-suite territory, large enough that the
/// caches warm up and the network sees real contention.
fn golden_scale() -> ExperimentScale {
    ExperimentScale::tiny()
}

fn bench(name: &str) -> BenchmarkProfile {
    BenchmarkProfile::by_name(name).expect("benchmark exists")
}

/// Renders a labelled metrics summary as a JSON object of integer
/// counters, on a single line for readable diffs.
fn render_metrics(label: &str, m: &Metrics) -> String {
    let lat = m.latency_histogram();
    format!(
        concat!(
            "{{\"label\": \"{label}\", ",
            "\"accesses\": {accesses}, \"writes\": {writes}, ",
            "\"hits\": {hits}, \"mru_hits\": {mru_hits}, ",
            "\"latency_sum\": {lat_sum}, \"latency_max\": {lat_max}, ",
            "\"mem_ops\": {mem_ops}, \"cycles\": {cycles}, ",
            "\"net_injected\": {injected}, \"net_delivered\": {delivered}, ",
            "\"net_flits_ejected\": {ejected}, \"net_latency_sum\": {net_lat}}}"
        ),
        label = label,
        accesses = m.accesses(),
        writes = m.writes(),
        hits = m.hit_latency_histogram().count(),
        mru_hits = m.hits_by_position()[0],
        lat_sum = lat.sum(),
        lat_max = lat.max(),
        mem_ops = m.mem_ops,
        cycles = m.cycles,
        injected = m.net.packets_injected,
        delivered = m.net.packets_delivered,
        ejected = m.net.flits_ejected,
        net_lat = m.net.total_packet_latency,
    )
}

/// Renders one (design, scheme, benchmark) cell.
fn render_cell(design: Design, scheme: Scheme, bench_name: &str) -> String {
    let (m, _ipc) = run_cell(design, scheme, &bench(bench_name), golden_scale());
    render_metrics(&format!("{design:?}/{scheme}/{bench_name}"), &m)
}

/// Renders one Fig. 7-style multicast cell under an explicit
/// replication strategy (Design A, Multicast Fast-LRU — a scheme whose
/// traffic actually multicasts, so the strategies diverge).
fn render_strategy_cell(strategy: MulticastStrategy, bench_name: &str) -> String {
    let mut cfg = Design::A.config(Scheme::MulticastFastLru);
    cfg.router.strategy = strategy;
    let (m, _ipc) =
        run_config(&cfg, &bench(bench_name), golden_scale()).expect("golden cell completes");
    render_metrics(
        &format!("A/multicast+fastLRU/{strategy}/{bench_name}"),
        &m,
    )
}

/// Renders a whole figure snapshot document from pre-rendered cells.
fn render_document(name: &str, cell_lines: &[String]) -> String {
    let s = golden_scale();
    let mut out = String::new();
    writeln!(out, "{{").unwrap();
    writeln!(out, "  \"schema\": \"nucanet/golden-figure-v1\",").unwrap();
    writeln!(out, "  \"figure\": \"{name}\",").unwrap();
    writeln!(
        out,
        "  \"scale\": {{\"warmup\": {}, \"measured\": {}, \"active_sets\": {}, \"seed\": {}}},",
        s.warmup, s.measured, s.active_sets, s.seed
    )
    .unwrap();
    writeln!(out, "  \"cells\": [").unwrap();
    for (i, line) in cell_lines.iter().enumerate() {
        let sep = if i + 1 < cell_lines.len() { "," } else { "" };
        writeln!(out, "    {line}{sep}").unwrap();
    }
    writeln!(out, "  ]").unwrap();
    writeln!(out, "}}").unwrap();
    out
}

/// Renders a figure snapshot document from (design, scheme, bench) cells.
fn render_figure(name: &str, cells: &[(Design, Scheme, &str)]) -> String {
    let lines: Vec<String> = cells.iter().map(|&(d, s, b)| render_cell(d, s, b)).collect();
    render_document(name, &lines)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Compares the rendered snapshot against the committed golden file, or
/// rewrites the file when `NUCANET_BLESS=1` is set.
fn check_golden(name: &str, cells: &[(Design, Scheme, &str)]) {
    check_golden_doc(name, render_figure(name, cells));
}

fn check_golden_doc(name: &str, rendered: String) {
    let path = golden_path(name);
    if std::env::var("NUCANET_BLESS").map(|v| v != "0").unwrap_or(false) {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, &rendered).expect("write golden snapshot");
        println!("blessed {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run NUCANET_BLESS=1 cargo test --test golden_figures",
            path.display()
        )
    });
    assert!(
        rendered == committed,
        "golden snapshot {} is stale.\n--- committed ---\n{committed}\n--- rendered ---\n{rendered}\n\
         If the change is intended, re-bless with:\n  NUCANET_BLESS=1 cargo test --test golden_figures",
        path.display()
    );
}

#[test]
fn fig7_summary_counters_are_pinned() {
    // Fig. 7 slice: Unicast LRU on Design A across three benchmarks
    // with very different hit profiles.
    let cells: Vec<_> = ["gcc", "twolf", "art"]
        .into_iter()
        .map(|b| (Design::A, Scheme::UnicastLru, b))
        .collect();
    check_golden("fig7", &cells);
}

#[test]
fn fig7_strategy_counters_are_pinned() {
    // The Fig. 7 benchmarks again, but on the multicast scheme under
    // each alternative replication strategy. Hybrid is pinned by the
    // other suites (it is the default everywhere); tree and path each
    // get their own snapshot so a kernel change in one strategy cannot
    // hide behind the others.
    for (name, strategy) in [
        ("fig7_tree", MulticastStrategy::Tree),
        ("fig7_path", MulticastStrategy::Path),
    ] {
        let lines: Vec<String> = ["gcc", "twolf", "art"]
            .into_iter()
            .map(|b| render_strategy_cell(strategy, b))
            .collect();
        check_golden_doc(name, render_document(name, &lines));
    }
}

#[test]
fn fig8_summary_counters_are_pinned() {
    // Fig. 8 slice: every search/replacement scheme on Design A, gcc.
    let cells: Vec<_> = ALL_SCHEMES
        .into_iter()
        .map(|s| (Design::A, s, "gcc"))
        .collect();
    check_golden("fig8", &cells);
}

#[test]
fn fig9_summary_counters_are_pinned() {
    // Fig. 9 slice: every network design under Multicast Fast-LRU, twolf.
    let cells: Vec<_> = ALL_DESIGNS
        .into_iter()
        .map(|d| (d, Scheme::MulticastFastLru, "twolf"))
        .collect();
    check_golden("fig9", &cells);
}
