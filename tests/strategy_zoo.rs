//! The strategy zoo: every multicast replication strategy (hybrid,
//! tree, path) run through the same determinism, fault-tolerance, and
//! warm-reset contracts the hybrid default has always had to meet.
//!
//! * bit-identical delivered sequences and statistics across
//!   cycle-kernel thread counts, per strategy, under link faults with
//!   the invariant checker on;
//! * bit-identical sweep outcomes across worker counts on a point list
//!   that *switches strategy mid-sweep* (forcing the warm path to
//!   rebuild its arenas — strategy is part of the structural key);
//! * end-to-end cache runs per strategy with injected faults;
//! * a property: the replication budget — flit copies minted per
//!   multicast — never exceeds (and at quiescence exactly equals)
//!   `flits × (destinations − 1)`, enforced by the invariant checker
//!   over arbitrary destination sets.

use nucanet::experiments::ExperimentScale;
use nucanet::sweep::{derive_seed, SweepPoint, SweepRunner};
use nucanet::{CacheSystem, Design, FaultConfig, Scheme, SystemConfig};
use nucanet_noc::{
    Dest, Endpoint, FaultEvent, FaultSchedule, MulticastStrategy, NetStats, Network, NodeId,
    Packet, PacketId, RouterParams, RoutingSpec, Topology, ALL_STRATEGIES,
};
use nucanet_workload::{BenchmarkProfile, SynthConfig, TraceGenerator};
use proptest::prelude::*;

/// An 8×8 mesh campaign mixing unicasts and column multicasts under a
/// transient fault pulse, checker on. Returns the delivered sequence
/// and final statistics.
fn mesh_campaign(
    strategy: MulticastStrategy,
    sim_threads: u32,
) -> (Vec<(PacketId, Endpoint, u64)>, NetStats) {
    let topo = Topology::mesh(8, 8, &[1; 7], &[1; 7]);
    let table = RoutingSpec::Xy.build(&topo).expect("mesh routes");
    let params = RouterParams {
        sim_threads,
        strategy,
        ..RouterParams::hpca07()
    };
    let mut net: Network<u64> = Network::new(topo, table, params);
    net.enable_invariant_checker();
    net.set_fault_schedule(FaultSchedule::new(vec![
        FaultEvent {
            cycle: 50,
            link: nucanet_noc::LinkId(9),
            up: false,
        },
        FaultEvent {
            cycle: 240,
            link: nucanet_noc::LinkId(9),
            up: true,
        },
    ]));
    let mut x: u64 = 0x00DD_BA11_5EED ^ (strategy as u64) << 32;
    let mut lcg = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 16
    };
    let mut delivered = Vec::new();
    let mut inbox = Vec::new();
    for wave in 0..4u64 {
        for i in 0..60u64 {
            let r = lcg();
            let a = (r % 64) as u32;
            let mut b = ((r >> 8) % 64) as u32;
            if a == b {
                b = (b + 1) % 64;
            }
            if r & 0x4000 == 0 {
                let col = (b % 8) as u16;
                let path: Vec<Endpoint> = (0..8)
                    .map(|row| Endpoint::at(net.topology().node_at(col, row)))
                    .collect();
                net.inject(Packet::new(
                    Endpoint::at(NodeId(a)),
                    Dest::multicast(path),
                    if r & 0x8000 == 0 { 1 } else { 3 },
                    wave * 100 + i,
                ));
            } else {
                net.inject(Packet::new(
                    Endpoint::at(NodeId(a)),
                    Dest::unicast(Endpoint::at(NodeId(b))),
                    if r & 0x10000 == 0 { 1 } else { 5 },
                    wave * 100 + i,
                ));
            }
        }
        while net.is_busy() || net.next_event_cycle().is_some() {
            net.advance().expect("campaign traffic cannot deadlock");
            net.drain_all_delivered_into(&mut inbox);
            for d in inbox.drain(..) {
                delivered.push((d.packet.id, d.endpoint, net.cycle()));
            }
        }
    }
    let checker = net.take_invariant_checker().expect("checker was enabled");
    assert!(
        checker.violations().is_empty(),
        "{strategy}/sim_threads={sim_threads}: {:?}",
        checker.violations()
    );
    (delivered, net.stats().clone())
}

#[test]
fn every_strategy_is_bit_identical_across_thread_counts() {
    for strategy in ALL_STRATEGIES {
        let (serial_seq, serial_stats) = mesh_campaign(strategy, 1);
        assert!(
            serial_seq.len() > 300,
            "{strategy}: campaign must deliver real traffic, got {}",
            serial_seq.len()
        );
        assert!(
            serial_stats.link_down_events > 0,
            "{strategy}: the fault pulse must actually fire"
        );
        for threads in [2, 4] {
            let (seq, stats) = mesh_campaign(strategy, threads);
            assert_eq!(
                serial_seq, seq,
                "{strategy}: delivered sequence must not depend on sim_threads={threads}"
            );
            assert_eq!(
                serial_stats, stats,
                "{strategy}: statistics must not depend on sim_threads={threads}"
            );
        }
    }
}

#[test]
fn path_strategy_never_splits_and_tree_does() {
    let (_, path_stats) = mesh_campaign(MulticastStrategy::Path, 1);
    assert_eq!(
        path_stats.replications, 0,
        "path multicast visits endpoints serially, no replica VCs"
    );
    let (_, hybrid_stats) = mesh_campaign(MulticastStrategy::Hybrid, 1);
    assert!(
        hybrid_stats.replications > 0,
        "hybrid multicast must split at destination routers"
    );
}

fn bench(name: &str) -> BenchmarkProfile {
    BenchmarkProfile::by_name(name).expect("benchmark exists")
}

fn mk(label: &str, cfg: SystemConfig, name: &str, i: u64) -> SweepPoint {
    SweepPoint {
        label: label.into(),
        config: cfg.into(),
        profile: bench(name),
        scale: ExperimentScale {
            warmup: 600,
            measured: 120,
            active_sets: 32,
            seed: derive_seed(0x5742, i),
        },
    }
}

/// A sweep that changes strategy mid-flight on the same Design A
/// structure — including a faulted tree point — so the warm path has to
/// notice that strategy is part of the structural key and rebuild its
/// arenas instead of replaying a stale kernel.
fn switching_campaign() -> Vec<SweepPoint> {
    let mut per: Vec<SystemConfig> = ALL_STRATEGIES
        .into_iter()
        .map(|s| {
            let mut cfg = Design::A.config(Scheme::MulticastFastLru);
            cfg.router.strategy = s;
            cfg.check_invariants = true;
            cfg
        })
        .collect();
    let mut faulted_tree = per[1].clone();
    faulted_tree.faults = Some(FaultConfig::random(2, (1, 1_000), Some(400)));
    vec![
        mk("hybrid-gcc", per[0].clone(), "gcc", 0),
        mk("tree-gcc", per[1].clone(), "gcc", 0),
        mk("path-gcc", per.remove(2), "gcc", 0),
        mk("tree-faulted", faulted_tree, "vpr", 1),
        mk("tree-art", per.remove(1), "art", 2),
        mk("hybrid-art", per.remove(0), "art", 2),
    ]
}

#[test]
fn strategy_switching_sweep_is_warm_and_worker_invariant() {
    let points = switching_campaign();
    let fresh = SweepRunner::with_workers(1).reuse(false).run(&points);
    assert!(
        fresh[3].metrics.net.link_down_events > 0,
        "the faulted tree point must inject faults"
    );
    // Identical workload, identical deliveries: the strategies may only
    // move latency, never the hit/miss outcome.
    assert_eq!(fresh[0].metrics.hit_rate(), fresh[1].metrics.hit_rate());
    assert_eq!(fresh[0].metrics.hit_rate(), fresh[2].metrics.hit_rate());
    for workers in [1usize, 4] {
        let warm = SweepRunner::with_workers(workers).run(&points);
        for (f, w) in fresh.iter().zip(&warm) {
            assert_eq!(f.label, w.label);
            assert_eq!(
                f.metrics, w.metrics,
                "{}: warm metrics must be bit-identical to fresh (workers {workers})",
                f.label
            );
            assert_eq!(f.ipc.to_bits(), w.ipc.to_bits(), "{}", f.label);
        }
    }
}

#[test]
fn faulted_cache_runs_complete_under_every_strategy() {
    for strategy in ALL_STRATEGIES {
        let mut cfg = Design::A.config(Scheme::MulticastFastLru);
        cfg.check_invariants = true;
        cfg.router.strategy = strategy;
        cfg.faults = Some(FaultConfig::random(2, (50, 400), Some(300)));
        let mut gen = TraceGenerator::new(
            bench("twolf"),
            SynthConfig {
                active_sets: 32,
                seed: derive_seed(0xFA57, strategy as u64),
                ..Default::default()
            },
        );
        let trace = gen.generate(800, 150);
        let run = |sim_threads: u32| {
            let mut cfg = cfg.clone();
            cfg.router.sim_threads = sim_threads;
            let mut sys = CacheSystem::new(&cfg);
            sys.run(&trace)
                .unwrap_or_else(|e| panic!("{strategy}: faulted cell must complete: {e}"))
        };
        assert_eq!(
            run(1),
            run(4),
            "{strategy}: faulted cell metrics must not depend on sim_threads"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The replication budget holds for arbitrary destination sets: the
    /// invariant checker records a violation the moment a packet mints
    /// more than `flits × (destinations − 1)` copies, and again at
    /// quiescence if the total is not exactly that — so a clean checker
    /// IS the property.
    #[test]
    fn replication_budget_is_exact_for_arbitrary_multicasts(
        raw in proptest::collection::vec(0u32..36, 3..9),
        src in 0u32..36,
        flits in 1u32..6,
        strategy_idx in 0usize..3,
    ) {
        let strategy = ALL_STRATEGIES[strategy_idx];
        let topo = Topology::mesh(6, 6, &[1; 5], &[1; 5]);
        let table = RoutingSpec::Xy.build(&topo).expect("mesh routes");
        let params = RouterParams { strategy, ..RouterParams::hpca07() };
        let mut net: Network<u64> = Network::new(topo, table, params);
        net.enable_invariant_checker();
        // Distinct destination nodes (order as drawn), never the
        // source, padded to at least two so it is always a multicast.
        let mut nodes: Vec<u32> = Vec::new();
        for d in raw {
            if d != src && !nodes.contains(&d) {
                nodes.push(d);
            }
        }
        let mut pad = src;
        while nodes.len() < 2 {
            pad = (pad + 1) % 36;
            if pad != src && !nodes.contains(&pad) {
                nodes.push(pad);
            }
        }
        let dests: Vec<Endpoint> = nodes.into_iter().map(|d| Endpoint::at(NodeId(d))).collect();
        let n_dests = dests.len();
        net.inject(Packet::new(
            Endpoint::at(NodeId(src)),
            Dest::multicast(dests),
            flits,
            0,
        ));
        let mut deliveries = 0usize;
        let mut inbox = Vec::new();
        while net.is_busy() || net.next_event_cycle().is_some() {
            net.advance().expect("a lone multicast cannot deadlock");
            net.drain_all_delivered_into(&mut inbox);
            deliveries += inbox.drain(..).count();
        }
        prop_assert_eq!(deliveries, n_dests, "{} must reach every endpoint", strategy);
        let checker = net.take_invariant_checker().expect("checker was enabled");
        prop_assert!(
            checker.violations().is_empty(),
            "{}: {:?}",
            strategy,
            checker.violations()
        );
    }
}
