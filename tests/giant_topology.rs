//! Giant-topology construction and CMP determinism tests.
//!
//! The routing-table builder is O(links) per destination with dense
//! scratch reuse, so a 32×32 mesh (1024 routers, ~4k links) must build
//! its topology, its full next-hop tables, and a masked rebuild in
//! milliseconds — asserted here with a generous wall-clock bound so the
//! test fails loudly if construction ever regresses to the old
//! superlinear scan. The CMP half pins the determinism contract at
//! scale: `run_cmp` is bit-identical for any `sim_threads` value and
//! any sweep worker count.

use std::time::Instant;

use nucanet::experiments::ExperimentScale;
use nucanet::sweep::{SweepPoint, SweepRunner};
use nucanet::{CacheSystem, Design, Scheme, SystemConfig, TopologyChoice};
use nucanet_noc::{NodeId, RoutingSpec, Topology};
use nucanet_workload::{BenchmarkProfile, SynthConfig, Trace, TraceGenerator};

/// Wall-clock ceiling for one giant construction step. The release-mode
/// CI gate asserts "well under a second"; debug builds are slower, so
/// the bound scales with the build profile while still catching any
/// return of the O(V·E)-per-destination builder (which took minutes at
/// this size).
fn budget_ms() -> u128 {
    if cfg!(debug_assertions) {
        20_000
    } else {
        1_000
    }
}

/// Asserts full pairwise routability on a pristine table.
fn assert_all_routable(topo: &Topology, table: &nucanet_noc::RoutingTable) {
    let n = topo.routers().len() as u32;
    for src in 0..n {
        for dst in 0..n {
            assert!(
                table.is_routable(NodeId(src), NodeId(dst)),
                "{src}->{dst} must route on the pristine topology"
            );
        }
    }
}

#[test]
fn mesh_32x32_builds_tables_and_rebuilds_in_milliseconds() {
    let t0 = Instant::now();
    let topo = Topology::mesh(32, 32, &[1; 31], &[1; 31]);
    let built_topo = t0.elapsed();
    assert_eq!(topo.routers().len(), 1024);

    let t1 = Instant::now();
    let table = RoutingSpec::ShortestPath.build(&topo).expect("mesh routes");
    let built_table = t1.elapsed();
    assert_all_routable(&topo, &table);

    // Masked rebuild: drop every 17th link and rebuild the table the
    // way fault recomputation does.
    let mut link_up = vec![true; topo.link_count()];
    for (i, up) in link_up.iter_mut().enumerate() {
        if i % 17 == 0 {
            *up = false;
        }
    }
    let t2 = Instant::now();
    let mut builder =
        nucanet_noc::RoutingBuilder::new(RoutingSpec::ShortestPath, &topo).expect("mesh");
    let degraded = builder.build(&topo, &link_up);
    let rebuilt = t2.elapsed();

    // Routability invariants on the degraded table: next-hop edges must
    // only use up links and reachability must match what next[] encodes.
    let n = topo.routers().len() as u32;
    let mut reachable_pairs = 0u64;
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            if let Some(p) = degraded.next_hop(NodeId(src), NodeId(dst)) {
                let link = topo.router(NodeId(src)).ports[p.0 as usize]
                    .out_link
                    .expect("routed port has a link");
                assert!(link_up[link.0 as usize], "route over a downed link");
            }
            if degraded.is_routable(NodeId(src), NodeId(dst)) {
                reachable_pairs += 1;
            }
        }
    }
    assert!(
        reachable_pairs > 0,
        "a 1-in-17 link mask cannot kill every pair"
    );

    for (what, d) in [
        ("topology", built_topo),
        ("tables", built_table),
        ("masked rebuild", rebuilt),
    ] {
        assert!(
            d.as_millis() < budget_ms(),
            "32x32 {what} took {} ms (budget {} ms)",
            d.as_millis(),
            budget_ms()
        );
    }
}

#[test]
fn four_hub_halo_builds_and_survives_a_masked_rebuild() {
    let t0 = Instant::now();
    // 4 hubs on a ring, 8 spikes each of length 16: 516 routers.
    let topo = Topology::multi_hub_halo(4, 8, 16, &[1; 16], 2, 3);
    let table = RoutingSpec::ShortestPath.build(&topo).expect("halo routes");
    assert_eq!(topo.routers().len(), 4 + 4 * 8 * 16);
    assert_all_routable(&topo, &table);
    assert!(
        t0.elapsed().as_millis() < budget_ms(),
        "4-hub halo construction took {} ms",
        t0.elapsed().as_millis()
    );

    // Cut one spike's first link: only that spike's routers lose
    // reachability; the ring keeps every hub and other spike connected.
    let hub = topo.hub_node(1);
    let first = topo.hub_spike_node(1, 3, 0);
    let mut link_up = vec![true; topo.link_count()];
    for (i, l) in topo.links().iter().enumerate() {
        if (l.src == hub && l.dst == first) || (l.src == first && l.dst == hub) {
            link_up[i] = false;
        }
    }
    let mut builder =
        nucanet_noc::RoutingBuilder::new(RoutingSpec::ShortestPath, &topo).expect("halo");
    let degraded = builder.build(&topo, &link_up);
    assert!(!degraded.is_routable(topo.hub_node(0), first));
    assert!(!degraded.is_routable(first, topo.hub_node(0)));
    assert!(degraded.is_routable(topo.hub_node(0), topo.hub_node(2)));
    assert!(degraded.is_routable(
        topo.hub_spike_node(0, 0, 15),
        topo.hub_spike_node(3, 7, 15)
    ));
    // Downstream routers of the cut spike still talk to each other.
    assert!(degraded.is_routable(
        topo.hub_spike_node(1, 3, 0),
        topo.hub_spike_node(1, 3, 15)
    ));
}

/// A 32-column mesh config carrying one 64 KB bank per position: the
/// giant closed-loop CMP machine (1024 banks).
fn giant_config(cores: u16, sim_threads: u32) -> SystemConfig {
    let mut cfg = Design::A.config(Scheme::MulticastFastLru);
    cfg.name = "mesh-giant".into();
    cfg.columns = 32;
    cfg.bank_kb = vec![64; 32];
    cfg.bank_ways = vec![1; 32];
    cfg.cores = cores;
    cfg.router.sim_threads = sim_threads;
    cfg
}

fn giant_traces(cores: u16) -> Vec<Trace> {
    let profile = BenchmarkProfile::by_name("gcc").expect("profile");
    (0..cores)
        .map(|i| {
            let mut gen = TraceGenerator::new(
                profile,
                SynthConfig {
                    active_sets: 64,
                    seed: 0x61A_u64.wrapping_add(i as u64),
                    ..Default::default()
                },
            );
            gen.generate(500, 60)
        })
        .collect()
}

#[test]
fn giant_cmp_run_is_bit_identical_across_sim_threads() {
    let cores = 8;
    let traces = giant_traces(cores);
    let mut results = Vec::new();
    for sim_threads in [1u32, 4] {
        let mut sys = CacheSystem::new(&giant_config(cores, sim_threads));
        assert_eq!(sys.core_count(), cores as usize);
        results.push(sys.run_cmp(&traces).expect("giant CMP run completes"));
    }
    assert_eq!(
        results[0], results[1],
        "per-core metrics must not depend on sim_threads"
    );
}

#[test]
fn giant_cmp_sweep_is_bit_identical_across_worker_counts() {
    let scale = ExperimentScale {
        warmup: 400,
        measured: 50,
        active_sets: 64,
        seed: 11,
    };
    let profile = BenchmarkProfile::by_name("gcc").expect("profile");
    let points: Vec<SweepPoint> = [2u16, 4]
        .into_iter()
        .map(|cores| SweepPoint {
            label: format!("giant x{cores}").into(),
            config: giant_config(cores, 1).into(),
            profile,
            scale,
        })
        .collect();
    let one = SweepRunner::with_workers(1).run(&points);
    let four = SweepRunner::with_workers(4).run(&points);
    assert_eq!(one.len(), four.len());
    for (a, b) in one.iter().zip(&four) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.metrics, b.metrics, "{}", a.label);
    }
}

#[test]
fn multi_hub_cmp_layout_spreads_cores_over_hubs() {
    let mut cfg = Design::F.config(Scheme::MulticastFastLru);
    cfg.topology = TopologyChoice::MultiHubHalo { hubs: 4 };
    cfg.cores = 8;
    let sys = CacheSystem::new(&cfg);
    let layout = sys.layout();
    // 8 interfaces over 4 hubs: two per hub, none colliding with the
    // memory controller's slot.
    assert_eq!(layout.core_ports.len(), 8);
    for h in 0..4u32 {
        let on_hub = layout
            .core_ports
            .iter()
            .filter(|e| e.node == NodeId(h))
            .count();
        assert_eq!(on_hub, 2, "hub {h}");
    }
    assert!(layout
        .core_ports
        .iter()
        .all(|e| *e != layout.memory));
}
