//! Warm-evaluation bit-identity campaign: the arena-reuse sweep path
//! must be indistinguishable — metric for metric, bit for bit — from
//! fresh per-point construction, for every worker count × sim-thread
//! combination the engine supports.
//!
//! The point list is built to stress the reset machinery, not to avoid
//! it: consecutive points share one structure (so the warm path really
//! reuses a carcass), a fault-schedule point is sandwiched between
//! clean points on the *same* structure (so fault state must be fully
//! scrubbed by the next reset), and a structure switch forces the
//! arena to discard and rebuild mid-sweep.

use std::sync::Arc;

use nucanet::experiments::ExperimentScale;
use nucanet::sweep::{derive_seed, SweepPoint, SweepRunner};
use nucanet::{Design, FaultConfig, Scheme, SystemConfig};
use nucanet_workload::BenchmarkProfile;

fn bench(name: &str) -> BenchmarkProfile {
    BenchmarkProfile::by_name(name).expect("benchmark exists")
}

fn scale(i: u64) -> ExperimentScale {
    ExperimentScale {
        warmup: 600,
        measured: 120,
        active_sets: 32,
        seed: derive_seed(0x1DE7, i),
    }
}

fn mk(label: &str, cfg: SystemConfig, name: &str, i: u64) -> SweepPoint {
    SweepPoint {
        label: label.into(),
        config: cfg.into(),
        profile: bench(name),
        scale: scale(i),
    }
}

/// Seven points: four clean Design A points (shared structure), one
/// faulted Design A point sandwiched between them, then two Design E
/// halo points forcing a carcass rebuild.
fn campaign(sim_threads: u32) -> Vec<SweepPoint> {
    let design_a = Design::A.config(Scheme::MulticastFastLru);
    let design_e = Design::E.config(Scheme::UnicastLru);
    let mut faulted = design_a.clone();
    faulted.faults = Some(FaultConfig::random(2, (1, 1_000), Some(400)));
    let mut points = vec![
        mk("a-gcc", design_a.clone(), "gcc", 0),
        mk("a-twolf", design_a.clone(), "twolf", 1),
        mk("a-faulted", faulted, "vpr", 2),
        mk("a-mcf", design_a.clone(), "mcf", 3),
        mk("a-art", design_a, "art", 4),
        mk("e-mesa", design_e.clone(), "mesa", 5),
        mk("e-parser", design_e, "parser", 6),
    ];
    for p in &mut points {
        Arc::make_mut(&mut p.config).router.sim_threads = sim_threads;
    }
    points
}

#[test]
fn warm_sweeps_match_fresh_sweeps_bit_for_bit() {
    for sim_threads in [1u32, 4] {
        let points = campaign(sim_threads);
        let fresh = SweepRunner::with_workers(1).reuse(false).run(&points);

        // The faulted point must actually exercise the fault machinery,
        // and its clean successors must see a fault-free network.
        assert!(
            fresh[2].metrics.net.link_down_events > 0,
            "the sandwiched point must inject faults"
        );
        for o in [&fresh[3], &fresh[4]] {
            assert_eq!(
                o.metrics.net.link_down_events, 0,
                "{}: clean points after the faulted one must see no faults",
                o.label
            );
        }

        for workers in [1usize, 4] {
            let warm = SweepRunner::with_workers(workers).run(&points);
            for (f, w) in fresh.iter().zip(&warm) {
                assert_eq!(f.label, w.label);
                assert_eq!(
                    f.metrics, w.metrics,
                    "{}: warm metrics must be bit-identical to fresh \
                     (workers {workers}, sim_threads {sim_threads})",
                    f.label
                );
                assert_eq!(
                    f.ipc.to_bits(),
                    w.ipc.to_bits(),
                    "{}: warm IPC must be bit-identical to fresh",
                    f.label
                );
            }
        }
    }
}

#[test]
fn repeated_warm_sweeps_are_stable() {
    // Two warm sweeps over the same points must agree with each other:
    // within each sweep the later points run on reset carcasses, so any
    // reset-state drift would desynchronise the repeat run.
    let points = campaign(1);
    let runner = SweepRunner::with_workers(2);
    let a = runner.run(&points);
    let b = runner.run(&points);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.metrics, y.metrics, "{}", x.label);
        assert_eq!(x.ipc.to_bits(), y.ipc.to_bits(), "{}", x.label);
    }
}
