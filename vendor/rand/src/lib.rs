//! Offline, deterministic stand-in for the subset of the `rand` 0.8 API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the three external crates it depends on as minimal local
//! implementations (see `vendor/` in the repository root). This crate
//! provides:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range` and `gen_bool`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`], implemented as xoshiro256++ seeded via SplitMix64.
//!
//! The generator is fully deterministic for a given seed, which is all
//! the simulator requires (the workspace never asks for OS entropy).
//! Streams differ from upstream `rand`'s `StdRng` (ChaCha12), so absolute
//! sampled values are not comparable across implementations — only
//! statistical shape and reproducibility are.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values that can be drawn uniformly from the generator's full range
/// (the stand-in for `rand`'s `Standard` distribution).
pub trait UniformValue {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformValue for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformValue for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl UniformValue for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformValue for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformValue for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integers that can be drawn uniformly from a half-open range.
pub trait UniformInt: Copy {
    /// Draws one value from `range` using `rng`.
    fn draw_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn draw_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u128;
                // Widening modulo; the bias is ~2^-64 and irrelevant for
                // simulation workloads.
                let v = (rng.next_u64() as u128) % span;
                (range.start as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn draw_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value (`f64` in `[0, 1)`, full
    /// range for integers).
    fn gen<T: UniformValue>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws one value uniformly from the half-open `range`.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::draw_range(self, range)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seeding. Deterministic, fast, and statistically solid for
    /// simulation use.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut c = StdRng::seed_from_u64(10);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..17);
            assert!((5..17).contains(&v));
            let s = rng.gen_range(-3i32..4);
            assert!((-3..4).contains(&s));
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }

    #[test]
    fn works_through_unsized_references() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert!(sample(&mut rng) < 1.0);
    }
}
