//! Offline, deterministic stand-in for the subset of the `proptest` API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors its external dependencies as minimal local crates (see
//! `vendor/` in the repository root). This crate supports the property
//! tests under `tests/`:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(...)]` header and `arg in strategy` bindings,
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * strategies: integer and float ranges, tuples of strategies,
//!   [`collection::vec`], [`option::of`], [`bool::ANY`], and the
//!   [`strategy::Strategy::prop_map`] combinator.
//!
//! Differences from upstream: sampling is fully deterministic (seeded
//! from the test name, so failures reproduce exactly), and there is no
//! shrinking — a failing case panics with the sampled values instead.

use std::ops::Range;

/// How many cases [`proptest!`] runs per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` samples per property (upstream's
    /// constructor of the same name).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic test-case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from `name` (typically the property
    /// function's name) so every test gets an independent, reproducible
    /// stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Sources of random test values.
pub mod strategy {
    use super::TestRng;

    /// A recipe for producing random values of one type.
    pub trait Strategy {
        /// The value type this strategy produces.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every drawn value with `f` (upstream's
        /// `Strategy::prop_map` combinator).
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, map: f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.map)(self.source.sample(rng))
        }
    }
}

use strategy::Strategy;

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H)
);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Produces vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Optional-value strategies, mirroring `proptest::option`.
pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Option<S::Value>` (see [`of`]).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Produces `Some` of the inner strategy's value or `None`, each
    /// with probability ½ (upstream's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy producing `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// The any-boolean strategy (`proptest::bool::ANY`).
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The glob-import surface tests use (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Asserts a property-test condition, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that samples its arguments `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    let __case_ctx = format!(
                        "proptest case {}/{} of {}: {:?}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        ($(&$arg,)*)
                    );
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(e) = __outcome {
                        eprintln!("{__case_ctx}");
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{ @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..500 {
            let v = Strategy::sample(&(3u32..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::sample(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::TestRng::deterministic("vec");
        let s = crate::collection::vec((0u32..4, crate::bool::ANY), 2..7);
        for _ in 0..100 {
            let v = Strategy::sample(&s, &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|(x, _)| *x < 4));
        }
    }

    #[test]
    fn prop_map_transforms_samples() {
        let mut rng = crate::TestRng::deterministic("map");
        let s = (1u32..5).prop_map(|v| v * 10);
        for _ in 0..100 {
            let v = Strategy::sample(&s, &mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    #[test]
    fn option_of_yields_both_variants() {
        let mut rng = crate::TestRng::deterministic("opt");
        let s = crate::option::of(0u8..4);
        let (mut some, mut none) = (0, 0);
        for _ in 0..200 {
            match Strategy::sample(&s, &mut rng) {
                Some(v) => {
                    assert!(v < 4);
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 50 && none > 50, "some={some} none={none}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[allow(clippy::needless_range_loop)]
        fn macro_binds_arguments(a in 1u32..5, flags in crate::collection::vec(crate::bool::ANY, 0..4)) {
            prop_assert!((1..5).contains(&a));
            prop_assert_eq!(flags.len() < 4, true);
        }
    }
}
