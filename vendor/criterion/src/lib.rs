//! Offline, deterministic stand-in for the subset of the `criterion`
//! API this workspace's microbenchmarks use.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors its external dependencies as minimal local crates (see
//! `vendor/` in the repository root). This harness measures each
//! benchmark with a short warm-up followed by timed batches and prints
//! one `name ... time/iter` line per benchmark — no statistics engine,
//! no HTML reports, but the same source-level API:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`].

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a parameter's display form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }

    /// Builds an id from a function name and a parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up briefly, then measuring enough
    /// iterations to fill the sampling window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~20 ms or 3 iterations, whichever is later.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters as u32;
        // Measure: aim for ~100 ms of work, at least one iteration.
        let target = Duration::from_millis(100);
        let n = if per_iter.is_zero() {
            10_000
        } else {
            (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = n;
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{name:<40} (no measurement)");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!("{name:<40} {value:>10.3} {unit}/iter ({} iters)", b.iters);
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes samples by
    /// wall-clock instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one parameterised benchmark of the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.name), &b);
        self
    }

    /// Ends the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags such as `--bench`; the
            // stand-in runs everything unconditionally.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_without_panicking() {
        let mut c = Criterion::default();
        c.bench_function("smoke/add", |b| b.iter(|| black_box(2u64) + 2));
    }

    #[test]
    fn groups_run_parameterised_benches() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(3u32), &3u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
    }
}
